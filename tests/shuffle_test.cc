#include <gtest/gtest.h>

#include <filesystem>

#include "shuffle/cache_worker.h"
#include "shuffle/shuffle_mode.h"
#include "shuffle/shuffle_service.h"

namespace swift {
namespace {

TEST(ShuffleModeTest, AdaptiveSelectionMatchesPaperThresholds) {
  // Sec. III-B: Direct < 10,000; Remote in [10,000, 90,000); Local above.
  EXPECT_EQ(SelectShuffleKind(1), ShuffleKind::kDirect);
  EXPECT_EQ(SelectShuffleKind(9999), ShuffleKind::kDirect);
  EXPECT_EQ(SelectShuffleKind(10000), ShuffleKind::kRemote);
  EXPECT_EQ(SelectShuffleKind(89999), ShuffleKind::kRemote);
  EXPECT_EQ(SelectShuffleKind(90000), ShuffleKind::kLocal);
  EXPECT_EQ(SelectShuffleKind(1000000), ShuffleKind::kLocal);
}

TEST(ShuffleModeTest, ConnectionFormulasMatchPaper) {
  // M=250, N=250, Y=10: Direct M*N, Local M+N+C(Y,2), Remote M+N*Y.
  EXPECT_EQ(DirectShuffleConnections(250, 250), 62500);
  EXPECT_EQ(LocalShuffleConnections(250, 250, 10), 250 + 250 + 45);
  EXPECT_EQ(RemoteShuffleConnections(250, 250, 10), 250 + 2500);
  // Ordering claimed by the paper for large jobs: local < remote < direct.
  EXPECT_LT(LocalShuffleConnections(1000, 1000, 20),
            RemoteShuffleConnections(1000, 1000, 20));
  EXPECT_LT(RemoteShuffleConnections(1000, 1000, 20),
            DirectShuffleConnections(1000, 1000));
}

TEST(ShuffleModeTest, MemoryCopyCounts) {
  EXPECT_EQ(ExtraMemoryCopies(ShuffleKind::kDirect), 0);
  EXPECT_EQ(ExtraMemoryCopies(ShuffleKind::kRemote), 1);
  EXPECT_EQ(ExtraMemoryCopies(ShuffleKind::kLocal), 2);
}

ShuffleSlotKey Key(int src_task, int dst_task, JobId job = 1,
                   StageId src = 0, StageId dst = 1) {
  return ShuffleSlotKey{job, src, src_task, dst, dst_task};
}

TEST(CacheWorkerTest, PutGetRoundTrip) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "hello", 1).ok());
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
  auto r = cw.Get(Key(0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
  // Consumed after the expected single read.
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
  EXPECT_EQ(cw.Get(Key(0, 0)).status().code(), StatusCode::kNotFound);
}

TEST(CacheWorkerTest, PinnedSlotsSurviveReads) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "data", /*expected_reads=*/0).ok());
  for (int i = 0; i < 3; ++i) {
    auto r = cw.Get(Key(0, 0));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
  cw.RemoveJob(1);
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
}

TEST(CacheWorkerTest, PeekDoesNotConsume) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "data", 1).ok());
  ASSERT_TRUE(cw.Peek(Key(0, 0)).ok());
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
}

TEST(CacheWorkerTest, MultiReaderConsumption) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "data", 3).ok());
  ASSERT_TRUE(cw.Get(Key(0, 0)).ok());
  ASSERT_TRUE(cw.Get(Key(0, 0)).ok());
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
  ASSERT_TRUE(cw.Get(Key(0, 0)).ok());
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
  EXPECT_EQ(cw.stats().deletions, 1);
}

TEST(CacheWorkerTest, OverwriteReplacesSlot) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "old", 0).ok());
  ASSERT_TRUE(cw.Put(Key(0, 0), "new", 0).ok());
  auto r = cw.Peek(Key(0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "new");
}

TEST(CacheWorkerTest, OverBudgetWithoutSpillFails) {
  CacheWorker cw(10, "");
  EXPECT_EQ(cw.Put(Key(0, 0), "0123456789ABCDEF", 1).code(),
            StatusCode::kResourceExhausted);
}

TEST(CacheWorkerTest, LruSpillAndReload) {
  const std::string dir = ::testing::TempDir() + "/swift_spill_test";
  std::filesystem::remove_all(dir);
  CacheWorker cw(64, dir);  // tiny budget forces spills
  const std::string a(40, 'a');
  const std::string b(40, 'b');
  const std::string c(40, 'c');
  ASSERT_TRUE(cw.Put(Key(0, 0), a, 0).ok());
  ASSERT_TRUE(cw.Put(Key(1, 0), b, 0).ok());  // spills key(0,0)
  ASSERT_TRUE(cw.Put(Key(2, 0), c, 0).ok());  // spills key(1,0)
  auto stats = cw.stats();
  EXPECT_GE(stats.spilled_slots, 2);
  EXPECT_LE(stats.memory_in_use, 64);
  // All three are still readable (spilled ones reload from disk).
  auto ra = cw.Peek(Key(0, 0));
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(*ra, a);
  auto rb = cw.Peek(Key(1, 0));
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*rb, b);
  auto rc = cw.Peek(Key(2, 0));
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(*rc, c);
  EXPECT_GE(cw.stats().reloads, 2);
  std::filesystem::remove_all(dir);
}

TEST(CacheWorkerTest, RemoveStageOutputIsSelective) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(ShuffleSlotKey{1, 0, 0, 1, 0}, "a", 0).ok());
  ASSERT_TRUE(cw.Put(ShuffleSlotKey{1, 2, 0, 3, 0}, "b", 0).ok());
  cw.RemoveStageOutput(1, 0);
  EXPECT_FALSE(cw.Contains(ShuffleSlotKey{1, 0, 0, 1, 0}));
  EXPECT_TRUE(cw.Contains(ShuffleSlotKey{1, 2, 0, 3, 0}));
}

ShuffleService::Config ServiceConfig() {
  ShuffleService::Config c;
  c.machines = 4;
  c.cache_memory_per_worker = 1 << 20;
  c.retain_for_recovery = false;
  return c;
}

TEST(ShuffleServiceTest, RoutesAllKinds) {
  for (ShuffleKind kind :
       {ShuffleKind::kDirect, ShuffleKind::kLocal, ShuffleKind::kRemote}) {
    ShuffleService svc(ServiceConfig());
    ShuffleSlotKey key{7, 0, 2, 1, 3};
    ASSERT_TRUE(svc.WritePartition(kind, key, "payload", 1, true).ok());
    EXPECT_TRUE(svc.HasPartition(kind, key, 1));
    auto r = svc.ReadPartition(kind, key, 2, 1);
    ASSERT_TRUE(r.ok()) << ShuffleKindToString(kind);
    EXPECT_EQ(*r, "payload");
    // Consumed (retain_for_recovery = false).
    EXPECT_FALSE(svc.HasPartition(kind, key, 1));
  }
}

TEST(ShuffleServiceTest, RetainForRecoveryKeepsData) {
  auto cfg = ServiceConfig();
  cfg.retain_for_recovery = true;
  ShuffleService svc(cfg);
  ShuffleSlotKey key{7, 0, 0, 1, 0};
  ASSERT_TRUE(
      svc.WritePartition(ShuffleKind::kRemote, key, "x", 0, false).ok());
  ASSERT_TRUE(svc.ReadPartition(ShuffleKind::kRemote, key, 1, 0).ok());
  EXPECT_TRUE(svc.HasPartition(ShuffleKind::kRemote, key, 0));
  svc.RemoveJob(7);
  EXPECT_FALSE(svc.HasPartition(ShuffleKind::kRemote, key, 0));
}

TEST(ShuffleServiceTest, ConnectionAccountingDirectVsWorkerModes) {
  // 4 producers x 4 consumers on 2 machines.
  auto RunKind = [&](ShuffleKind kind) {
    auto cfg = ServiceConfig();
    cfg.machines = 2;
    ShuffleService svc(cfg);
    for (int s = 0; s < 4; ++s) {
      for (int d = 0; d < 4; ++d) {
        ShuffleSlotKey key{1, 0, s, 1, d};
        EXPECT_TRUE(svc.WritePartition(kind, key, "x", s % 2, true).ok());
        EXPECT_TRUE(svc.ReadPartition(kind, key, d % 2, s % 2).ok());
      }
    }
    return svc.stats().tcp_connections;
  };
  const int64_t direct = RunKind(ShuffleKind::kDirect);
  const int64_t local = RunKind(ShuffleKind::kLocal);
  const int64_t remote = RunKind(ShuffleKind::kRemote);
  EXPECT_EQ(direct, 16);  // M*N
  // Local: 4 writers + 4 readers + C(2,2)=1 worker-worker = 9.
  EXPECT_EQ(local, 9);
  // Remote: 4 writers + 4 readers x 2 machines = 12.
  EXPECT_EQ(remote, 12);
  EXPECT_LT(local, remote);
  EXPECT_LT(remote, direct);
}

TEST(ShuffleServiceTest, ForceKindOverridesAdaptive) {
  auto cfg = ServiceConfig();
  cfg.force_kind = ShuffleKind::kLocal;
  ShuffleService svc(cfg);
  EXPECT_EQ(svc.KindFor(5), ShuffleKind::kLocal);
  EXPECT_EQ(svc.KindFor(1000000), ShuffleKind::kLocal);
}

TEST(ShuffleServiceTest, MissingPartitionIsNotFound) {
  ShuffleService svc(ServiceConfig());
  ShuffleSlotKey key{1, 0, 0, 1, 0};
  EXPECT_EQ(svc.ReadPartition(ShuffleKind::kDirect, key, 0, 0)
                .status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(svc.ReadPartition(ShuffleKind::kLocal, key, 0, 0)
                .status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace swift
