#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "shuffle/cache_worker.h"
#include "shuffle/shuffle_buffer.h"
#include "shuffle/shuffle_mode.h"
#include "shuffle/shuffle_service.h"

namespace swift {
namespace {

TEST(ShuffleModeTest, AdaptiveSelectionMatchesPaperThresholds) {
  // Sec. III-B: Direct < 10,000; Remote in [10,000, 90,000); Local above.
  EXPECT_EQ(SelectShuffleKind(1), ShuffleKind::kDirect);
  EXPECT_EQ(SelectShuffleKind(9999), ShuffleKind::kDirect);
  EXPECT_EQ(SelectShuffleKind(10000), ShuffleKind::kRemote);
  EXPECT_EQ(SelectShuffleKind(89999), ShuffleKind::kRemote);
  EXPECT_EQ(SelectShuffleKind(90000), ShuffleKind::kLocal);
  EXPECT_EQ(SelectShuffleKind(1000000), ShuffleKind::kLocal);
}

TEST(ShuffleModeTest, ConnectionFormulasMatchPaper) {
  // M=250, N=250, Y=10: Direct M*N, Local M+N+C(Y,2), Remote M+N*Y.
  EXPECT_EQ(DirectShuffleConnections(250, 250), 62500);
  EXPECT_EQ(LocalShuffleConnections(250, 250, 10), 250 + 250 + 45);
  EXPECT_EQ(RemoteShuffleConnections(250, 250, 10), 250 + 2500);
  // Ordering claimed by the paper for large jobs: local < remote < direct.
  EXPECT_LT(LocalShuffleConnections(1000, 1000, 20),
            RemoteShuffleConnections(1000, 1000, 20));
  EXPECT_LT(RemoteShuffleConnections(1000, 1000, 20),
            DirectShuffleConnections(1000, 1000));
}

TEST(ShuffleModeTest, MemoryCopyCounts) {
  EXPECT_EQ(ExtraMemoryCopies(ShuffleKind::kDirect), 0);
  EXPECT_EQ(ExtraMemoryCopies(ShuffleKind::kRemote), 1);
  EXPECT_EQ(ExtraMemoryCopies(ShuffleKind::kLocal), 2);
}

ShuffleSlotKey Key(int src_task, int dst_task, JobId job = 1,
                   StageId src = 0, StageId dst = 1) {
  return ShuffleSlotKey{job, src, src_task, dst, dst_task};
}

TEST(CacheWorkerTest, PutGetRoundTrip) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "hello", 1).ok());
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
  auto r = cw.Get(Key(0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->view(), "hello");
  // Consumed after the expected single read.
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
  EXPECT_EQ(cw.Get(Key(0, 0)).status().code(), StatusCode::kNotFound);
}

TEST(CacheWorkerTest, PinnedSlotsSurviveReads) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "data", /*expected_reads=*/0).ok());
  for (int i = 0; i < 3; ++i) {
    auto r = cw.Get(Key(0, 0));
    ASSERT_TRUE(r.ok());
  }
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
  cw.RemoveJob(1);
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
}

TEST(CacheWorkerTest, PeekDoesNotConsume) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "data", 1).ok());
  ASSERT_TRUE(cw.Peek(Key(0, 0)).ok());
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
}

TEST(CacheWorkerTest, MultiReaderConsumption) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "data", 3).ok());
  ASSERT_TRUE(cw.Get(Key(0, 0)).ok());
  ASSERT_TRUE(cw.Get(Key(0, 0)).ok());
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
  ASSERT_TRUE(cw.Get(Key(0, 0)).ok());
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
  EXPECT_EQ(cw.stats().deletions, 1);
}

TEST(CacheWorkerTest, OverwriteReplacesSlot) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), "old", 0).ok());
  ASSERT_TRUE(cw.Put(Key(0, 0), "new", 0).ok());
  auto r = cw.Peek(Key(0, 0));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->view(), "new");
}

TEST(CacheWorkerTest, OverBudgetWithoutSpillBackpressuresNotFails) {
  // Regression for the pre-flow-control sharp edge: an over-budget Put
  // with spilling disabled used to fail hard with ResourceExhausted.
  // It now returns the retryable kBackpressure signal, nothing is
  // stored, and a forced put (the deadlock guard) still goes through.
  CacheWorker cw(10, "");
  Status st = cw.Put(Key(0, 0), "0123456789ABCDEF", 1);
  EXPECT_TRUE(st.IsBackpressure()) << st.ToString();
  EXPECT_NE(st.code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
  auto stats = cw.stats();
  EXPECT_EQ(stats.backpressure_rejections, 1);
  EXPECT_EQ(stats.bytes_rejected, 16);
  EXPECT_EQ(stats.bytes_written, 0);  // rejected bytes stay unaccounted
  ASSERT_TRUE(cw.Put(Key(0, 0), "0123456789ABCDEF", 1, /*force=*/true).ok());
  EXPECT_TRUE(cw.Contains(Key(0, 0)));
  EXPECT_EQ(cw.stats().forced_admits, 1);
}

TEST(CacheWorkerTest, LegacyGateOffKeepsHardFailure) {
  // The previous hard-failure behavior stays reachable as the bench
  // baseline (admission_gate = false).
  CacheWorkerOptions o;
  o.memory_budget_bytes = 10;
  o.admission_gate = false;
  CacheWorker cw(std::move(o));
  EXPECT_EQ(cw.Put(Key(0, 0), "0123456789ABCDEF", 1).code(),
            StatusCode::kResourceExhausted);
}

TEST(CacheWorkerTest, WaitForCapacityUnblocksOnDrain) {
  CacheWorker cw(32, "");
  ASSERT_TRUE(cw.Put(Key(0, 0), std::string(30, 'x'), 1).ok());
  EXPECT_TRUE(cw.Put(Key(1, 0), std::string(30, 'y'), 1).IsBackpressure());
  EXPECT_FALSE(cw.WaitForCapacity(30, 1.0));       // nothing drains: times out
  EXPECT_FALSE(cw.WaitForCapacity(1000, 1000.0));  // can never fit: immediate
  std::thread reader([&] { ASSERT_TRUE(cw.Get(Key(0, 0)).ok()); });
  EXPECT_TRUE(cw.WaitForCapacity(30, 5000.0));
  reader.join();
  ASSERT_TRUE(cw.Put(Key(1, 0), std::string(30, 'y'), 1).ok());
}

TEST(CacheWorkerTest, QuotaEvictionPrefersOverQuotaJobs) {
  const std::string dir = ::testing::TempDir() + "/swift_quota_test";
  std::filesystem::remove_all(dir);
  CacheWorkerOptions o;
  o.memory_budget_bytes = 100;
  o.spill_dir = dir;
  o.soft_watermark = 1.0;  // spill only on demand, to make the test exact
  o.per_job_quota = 0.5;   // 50 bytes per job
  CacheWorker cw(std::move(o));
  // Job 2's slot is the global LRU; job 1 then goes over quota.
  ASSERT_TRUE(cw.Put(Key(0, 0, /*job=*/2), std::string(20, 'b'), 0).ok());
  ASSERT_TRUE(cw.Put(Key(0, 0, /*job=*/1), std::string(30, 'a'), 0).ok());
  ASSERT_TRUE(cw.Put(Key(1, 0, /*job=*/1), std::string(30, 'a'), 0).ok());
  // 80 resident; +30 exceeds the budget. Plain LRU would spill job 2's
  // slot, but job 1 is over its 50-byte quota and job 2 is not: the
  // victim must come from job 1 (LRU within the job).
  ASSERT_TRUE(cw.Put(Key(2, 0, /*job=*/1), std::string(30, 'a'), 0).ok());
  auto stats = cw.stats();
  EXPECT_GE(stats.quota_evictions, 1);
  EXPECT_GE(stats.spilled_slots, 1);
  // Job 2's hot slot stayed resident (reading it reloads nothing).
  ASSERT_TRUE(cw.Peek(Key(0, 0, /*job=*/2)).ok());
  EXPECT_EQ(cw.stats().reloads, 0);
  // RemoveJob reclaims the heavy job's quota charge atomically.
  cw.RemoveJob(1);
  EXPECT_LE(cw.stats().memory_in_use, 20);
}

TEST(CacheWorkerTest, SpillDiskBudgetExhaustionDegradesToBackpressure) {
  const std::string dir = ::testing::TempDir() + "/swift_diskfull_test";
  std::filesystem::remove_all(dir);
  CacheWorkerOptions o;
  o.memory_budget_bytes = 64;
  o.spill_dir = dir;
  o.spill_disk_budget_bytes = 50;  // room for one 40-byte slot + footer
  CacheWorker cw(std::move(o));
  ASSERT_TRUE(cw.Put(Key(0, 0), std::string(40, 'a'), 0).ok());
  ASSERT_TRUE(cw.Put(Key(1, 0), std::string(40, 'b'), 0).ok());  // spills a
  // The disk budget is now spent: the next over-watermark put cannot
  // spill and must backpressure instead of growing or crashing.
  Status st = cw.Put(Key(2, 0), std::string(40, 'c'), 0);
  EXPECT_TRUE(st.IsBackpressure()) << st.ToString();
  EXPECT_LE(cw.stats().spill_disk_in_use, 50);
  // Both stored slots are still intact.
  EXPECT_EQ(cw.Peek(Key(0, 0))->view(), std::string(40, 'a'));
  EXPECT_EQ(cw.Peek(Key(1, 0))->view(), std::string(40, 'b'));
}

TEST(CacheWorkerTest, LruSpillAndReload) {
  const std::string dir = ::testing::TempDir() + "/swift_spill_test";
  std::filesystem::remove_all(dir);
  CacheWorker cw(64, dir);  // tiny budget forces spills
  const std::string a(40, 'a');
  const std::string b(40, 'b');
  const std::string c(40, 'c');
  ASSERT_TRUE(cw.Put(Key(0, 0), a, 0).ok());
  ASSERT_TRUE(cw.Put(Key(1, 0), b, 0).ok());  // spills key(0,0)
  ASSERT_TRUE(cw.Put(Key(2, 0), c, 0).ok());  // spills key(1,0)
  auto stats = cw.stats();
  EXPECT_GE(stats.spilled_slots, 2);
  EXPECT_LE(stats.memory_in_use, 64);
  // All three are still readable (spilled ones reload from disk).
  auto ra = cw.Peek(Key(0, 0));
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(ra->view(), a);
  auto rb = cw.Peek(Key(1, 0));
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb->view(), b);
  auto rc = cw.Peek(Key(2, 0));
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(rc->view(), c);
  EXPECT_GE(cw.stats().reloads, 2);
  std::filesystem::remove_all(dir);
}

TEST(CacheWorkerTest, RemoveStageOutputIsSelective) {
  CacheWorker cw(1 << 20, "");
  ASSERT_TRUE(cw.Put(ShuffleSlotKey{1, 0, 0, 1, 0}, "a", 0).ok());
  ASSERT_TRUE(cw.Put(ShuffleSlotKey{1, 2, 0, 3, 0}, "b", 0).ok());
  cw.RemoveStageOutput(1, 0);
  EXPECT_FALSE(cw.Contains(ShuffleSlotKey{1, 0, 0, 1, 0}));
  EXPECT_TRUE(cw.Contains(ShuffleSlotKey{1, 2, 0, 3, 0}));
}

ShuffleService::Config ServiceConfig() {
  ShuffleService::Config c;
  c.machines = 4;
  c.cache_memory_per_worker = 1 << 20;
  c.retain_for_recovery = false;
  return c;
}

TEST(ShuffleServiceTest, RoutesAllKinds) {
  for (ShuffleKind kind :
       {ShuffleKind::kDirect, ShuffleKind::kLocal, ShuffleKind::kRemote}) {
    ShuffleService svc(ServiceConfig());
    ShuffleSlotKey key{7, 0, 2, 1, 3};
    ASSERT_TRUE(svc.WritePartition(kind, key, "payload", 1, true).ok());
    EXPECT_TRUE(svc.HasPartition(kind, key, 1));
    auto r = svc.ReadPartition(kind, key, 2, 1);
    ASSERT_TRUE(r.ok()) << ShuffleKindToString(kind);
    EXPECT_EQ(r->view(), "payload");
    // Consumed (retain_for_recovery = false).
    EXPECT_FALSE(svc.HasPartition(kind, key, 1));
  }
}

TEST(ShuffleServiceTest, RetainForRecoveryKeepsData) {
  auto cfg = ServiceConfig();
  cfg.retain_for_recovery = true;
  ShuffleService svc(cfg);
  ShuffleSlotKey key{7, 0, 0, 1, 0};
  ASSERT_TRUE(
      svc.WritePartition(ShuffleKind::kRemote, key, "x", 0, false).ok());
  ASSERT_TRUE(svc.ReadPartition(ShuffleKind::kRemote, key, 1, 0).ok());
  EXPECT_TRUE(svc.HasPartition(ShuffleKind::kRemote, key, 0));
  svc.RemoveJob(7);
  EXPECT_FALSE(svc.HasPartition(ShuffleKind::kRemote, key, 0));
}

TEST(ShuffleServiceTest, ConnectionAccountingDirectVsWorkerModes) {
  // 4 producers x 4 consumers on 2 machines.
  auto RunKind = [&](ShuffleKind kind) {
    auto cfg = ServiceConfig();
    cfg.machines = 2;
    ShuffleService svc(cfg);
    for (int s = 0; s < 4; ++s) {
      for (int d = 0; d < 4; ++d) {
        ShuffleSlotKey key{1, 0, s, 1, d};
        EXPECT_TRUE(svc.WritePartition(kind, key, "x", s % 2, true).ok());
        EXPECT_TRUE(svc.ReadPartition(kind, key, d % 2, s % 2).ok());
      }
    }
    return svc.stats().tcp_connections;
  };
  const int64_t direct = RunKind(ShuffleKind::kDirect);
  const int64_t local = RunKind(ShuffleKind::kLocal);
  const int64_t remote = RunKind(ShuffleKind::kRemote);
  EXPECT_EQ(direct, 16);  // M*N
  // Local: 4 writers + 4 readers + C(2,2)=1 worker-worker = 9.
  EXPECT_EQ(local, 9);
  // Remote: 4 writers + 4 readers x 2 machines = 12.
  EXPECT_EQ(remote, 12);
  EXPECT_LT(local, remote);
  EXPECT_LT(remote, direct);
}

TEST(ShuffleServiceTest, ForceKindOverridesAdaptive) {
  auto cfg = ServiceConfig();
  cfg.force_kind = ShuffleKind::kLocal;
  ShuffleService svc(cfg);
  EXPECT_EQ(svc.KindFor(5), ShuffleKind::kLocal);
  EXPECT_EQ(svc.KindFor(1000000), ShuffleKind::kLocal);
}

TEST(ShuffleServiceTest, MissingPartitionIsNotFound) {
  ShuffleService svc(ServiceConfig());
  ShuffleSlotKey key{1, 0, 0, 1, 0};
  EXPECT_EQ(svc.ReadPartition(ShuffleKind::kDirect, key, 0, 0)
                .status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(svc.ReadPartition(ShuffleKind::kLocal, key, 0, 0)
                .status().code(),
            StatusCode::kNotFound);
}

TEST(ShuffleBufferTest, SharesOneAllocationAcrossHandles) {
  ShuffleBuffer a(std::string("0123456789"));
  EXPECT_EQ(a.use_count(), 1);
  ShuffleBuffer b = a;            // handle copy, same allocation
  ShuffleBuffer c = a.Slice(2, 5);
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(b.view(), "0123456789");
  EXPECT_EQ(c.view(), "23456");
  EXPECT_EQ(c.size(), 5u);
  // Views point into the same bytes, not copies of them.
  EXPECT_EQ(c.view().data(), a.view().data() + 2);
  ShuffleBuffer empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.valid());
  EXPECT_EQ(empty.view(), "");
}

TEST(ShuffleBufferTest, SliceClampsToBounds) {
  ShuffleBuffer a(std::string("abcdef"));
  EXPECT_EQ(a.Slice(4, 100).view(), "ef");
  EXPECT_EQ(a.Slice(100, 5).view(), "");
  EXPECT_EQ(a.Slice(2, 2).Slice(1, 5).view(), "d");
}

// Satellite: 8 threads hammer Put/Get/Peek on one worker under a budget
// tight enough that slots constantly spill and reload. Every payload
// must come back byte-exact (no slot served corrupt after reload) and
// memory_in_use must return to 0 once everything is consumed.
TEST(CacheWorkerTest, ConcurrentPutGetPeekUnderTightBudget) {
  const std::string dir = ::testing::TempDir() + "/swift_conc_spill";
  std::filesystem::remove_all(dir);
  constexpr int kThreads = 8;
  constexpr int kSlotsPerThread = 64;
  auto PayloadFor = [](int t, int s) {
    return std::string(
        static_cast<std::size_t>(1 + (t * 131 + s * 17) % 509),
        static_cast<char>('a' + (t * 7 + s) % 26));
  };
  {
    CacheWorker cw(4096, dir);  // ~130 KB of slots vs a 4 KB budget
    std::atomic<int> corrupt{0};
    std::atomic<int> errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int s = 0; s < kSlotsPerThread; ++s) {
          ShuffleSlotKey key{1, 0, t, 1, s};
          if (!cw.Put(key, PayloadFor(t, s), /*expected_reads=*/1).ok()) {
            errors.fetch_add(1);
          }
        }
        // Peek everything (reload from spill, no consumption)...
        for (int s = 0; s < kSlotsPerThread; ++s) {
          ShuffleSlotKey key{1, 0, t, 1, s};
          auto r = cw.Peek(key);
          if (!r.ok()) {
            errors.fetch_add(1);
          } else if (r->view() != PayloadFor(t, s)) {
            corrupt.fetch_add(1);
          }
        }
        // ...then consume every slot this thread owns.
        for (int s = 0; s < kSlotsPerThread; ++s) {
          ShuffleSlotKey key{1, 0, t, 1, s};
          auto r = cw.Get(key);
          if (!r.ok()) {
            errors.fetch_add(1);
          } else if (r->view() != PayloadFor(t, s)) {
            corrupt.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(corrupt.load(), 0);
    EXPECT_EQ(errors.load(), 0);
    auto stats = cw.stats();
    EXPECT_EQ(stats.memory_in_use, 0);
    EXPECT_EQ(stats.deletions, kThreads * kSlotsPerThread);
    EXPECT_GT(stats.spilled_slots, 0);
    EXPECT_GT(stats.reloads, 0);
  }
  std::filesystem::remove_all(dir);
}

TEST(ShuffleServiceTest, ZeroCopyPlanePerformsNoPayloadCopies) {
  auto cfg = ServiceConfig();
  cfg.retain_for_recovery = true;  // every read is a Peek re-send
  ShuffleService svc(cfg);
  const std::string payload(1 << 16, 'z');
  ShuffleSlotKey key{3, 0, 0, 1, 0};
  ASSERT_TRUE(svc.WritePartition(ShuffleKind::kLocal, key,
                                 ShuffleBuffer(std::string(payload)), 0, true)
                  .ok());
  // Three reads from another machine: first replicates, rest hit the
  // reader-side replica; all share the writer's single allocation.
  for (int i = 0; i < 3; ++i) {
    auto r = svc.ReadPartition(ShuffleKind::kLocal, key, 1, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->view(), payload);
    // Writer-side slot + reader-side replica + this handle.
    EXPECT_GE(r->use_count(), 3);
  }
  EXPECT_TRUE(svc.worker(1)->Contains(key));
  auto stats = svc.stats();
  EXPECT_EQ(stats.payload_copies, 0);
  EXPECT_EQ(stats.local_replicas, 1);
  EXPECT_EQ(stats.modeled_memory_copies, ExtraMemoryCopies(ShuffleKind::kLocal));
}

TEST(ShuffleServiceTest, LegacyCopyPlaneCountsPayloadCopies) {
  auto cfg = ServiceConfig();
  cfg.retain_for_recovery = true;
  cfg.zero_copy = false;
  ShuffleService svc(cfg);
  ShuffleSlotKey key{3, 0, 0, 1, 0};
  ASSERT_TRUE(svc.WritePartition(ShuffleKind::kRemote, key,
                                 std::string("payload"), 0, false)
                  .ok());
  ASSERT_TRUE(svc.ReadPartition(ShuffleKind::kRemote, key, 1, 0).ok());
  ASSERT_TRUE(svc.ReadPartition(ShuffleKind::kRemote, key, 2, 0).ok());
  // One copy into the worker at write, one out of it per read.
  EXPECT_EQ(svc.stats().payload_copies, 3);
}

TEST(ShuffleServiceTest, ModeledCopyAccountingMatchesPaper) {
  ShuffleService svc(ServiceConfig());
  int t = 0;
  for (ShuffleKind kind :
       {ShuffleKind::kDirect, ShuffleKind::kLocal, ShuffleKind::kRemote}) {
    ShuffleSlotKey key{9, 0, t++, 1, 0};
    ASSERT_TRUE(svc.WritePartition(kind, key, std::string("x"), 0, true).ok());
  }
  // Sec. III-B: Direct +0, Local +2, Remote +1 modeled copies.
  EXPECT_EQ(svc.stats().modeled_memory_copies, 3);
  EXPECT_EQ(svc.stats().payload_copies, 0);
}

}  // namespace
}  // namespace swift
