// Cross-substrate integration: DAGs planned from SQL by the distributed
// planner must be runnable on BOTH substrates — executed for real by the
// local runtime and replayed by the cluster simulator — with consistent
// structure.

#include <gtest/gtest.h>

#include "baselines/baseline_configs.h"
#include "exec/tpch.h"
#include "runtime/local_runtime.h"
#include "sim/cluster_sim.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

class CrossSubstrateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(cfg, runtime_.catalog()).ok());
  }
  LocalRuntime runtime_;
};

TEST_F(CrossSubstrateTest, SqlPlannedDagsSimulate) {
  for (int q : RunnableTpchQueries()) {
    auto sql = TpchQuerySql(q);
    ASSERT_TRUE(sql.ok());
    auto plan = PlanSql(*sql, *runtime_.catalog(), PlannerConfig{});
    ASSERT_TRUE(plan.ok()) << "Q" << q << ": " << plan.status().ToString();

    SimJobSpec job;
    job.name = "sql-q" + std::to_string(q);
    job.dag = plan->dag;
    ClusterSim sim(MakeSwiftSimConfig(10, 32));
    ASSERT_TRUE(sim.SubmitJob(job).ok()) << "Q" << q;
    auto report = sim.Run();
    ASSERT_TRUE(report.ok()) << "Q" << q;
    EXPECT_TRUE(report->jobs[0].completed) << "Q" << q;
    EXPECT_EQ(report->jobs[0].tasks_run, plan->dag.TotalTasks()) << "Q" << q;
  }
}

TEST_F(CrossSubstrateTest, SortModeProducesMoreGraphletsThanHashMode) {
  // The planner's operator choice controls the partitioning on both
  // substrates identically.
  ShuffleModeAwarePartitioner partitioner;
  for (int q : RunnableTpchQueries()) {
    auto sql = TpchQuerySql(q);
    PlannerConfig sorted;
    sorted.sort_mode = true;
    PlannerConfig hashed;
    hashed.sort_mode = false;
    auto ps = PlanSql(*sql, *runtime_.catalog(), sorted);
    auto ph = PlanSql(*sql, *runtime_.catalog(), hashed);
    ASSERT_TRUE(ps.ok());
    ASSERT_TRUE(ph.ok());
    auto gs = partitioner.Partition(ps->dag);
    auto gh = partitioner.Partition(ph->dag);
    ASSERT_TRUE(gs.ok());
    ASSERT_TRUE(gh.ok());
    EXPECT_GE(gs->graphlets.size(), gh->graphlets.size()) << "Q" << q;
  }
}

TEST_F(CrossSubstrateTest, RuntimeAndSimAgreeOnTaskCounts) {
  auto sql = TpchQuerySql(9);
  ASSERT_TRUE(sql.ok());
  auto plan = PlanSql(*sql, *runtime_.catalog(), PlannerConfig{});
  ASSERT_TRUE(plan.ok());
  auto report = runtime_.RunPlan(*plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  SimJobSpec job;
  job.name = "q9";
  job.dag = plan->dag;
  ClusterSim sim(MakeSwiftSimConfig(10, 32));
  ASSERT_TRUE(sim.SubmitJob(job).ok());
  auto sim_report = sim.Run();
  ASSERT_TRUE(sim_report.ok());
  // With no failures, both substrates execute each task exactly once.
  EXPECT_EQ(report->stats.tasks_executed,
            static_cast<int>(sim_report->jobs[0].tasks_run));
}

}  // namespace
}  // namespace swift
