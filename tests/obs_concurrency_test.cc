#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"

namespace swift {
namespace obs {
namespace {

// Concurrency soak for the metrics registry (ctest label `obs_tsan`):
// 8 writer threads hammer every metric kind — through fresh name
// lookups, not just cached handles — while a reader thread takes
// snapshots mid-flight. Run under ThreadSanitizer via the `tsan`
// preset; the final counts are exact, so a lost update fails the
// assertions even without the sanitizer.

TEST(ObsConcurrency, WritersAndSnapshotReaderRaceCleanly) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;

  MetricsRegistry reg;
  // Pre-register one handle to verify handle stability under the
  // concurrent map growth below.
  Counter* shared = reg.counter("shared");

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
      // Counters only move forward; a snapshot may be stale, never
      // negative or torn into impossible values.
      for (const auto& [name, value] : snap.counters) EXPECT_GE(value, 0);
      (void)reg.ToJson();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&reg, t] {
      const std::string own = "per-thread." + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        reg.counter("shared")->Add(1);
        reg.counter(own)->Add(2);
        reg.gauge("gauge")->Set(static_cast<double>(i));
        reg.histogram("hist", 0.0, 1.0, 10)
            ->Record(static_cast<double>(i % 10) / 10.0);
        reg.series("series." + std::to_string(t))
            ->Record(static_cast<double>(i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(shared, reg.counter("shared")) << "handle moved under growth";
  EXPECT_EQ(reg.CounterValue("shared"),
            static_cast<int64_t>(kThreads) * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.CounterValue("per-thread." + std::to_string(t)),
              2 * kOpsPerThread);
    EXPECT_EQ(reg.SeriesValue("series." + std::to_string(t)).size(),
              static_cast<std::size_t>(kOpsPerThread));
  }
  HistogramSnapshot h = reg.HistogramValue("hist");
  EXPECT_EQ(h.count, static_cast<int64_t>(kThreads) * kOpsPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
}

TEST(ObsConcurrency, TraceRecorderConcurrentSpans) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;

  TraceRecorder tracer;  // logical tick clock is an atomic counter
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span meta;
        meta.name = "s" + std::to_string(t);
        meta.category = "work";
        meta.machine = t;
        tracer.End(tracer.Begin(std::move(meta)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<Span> spans = tracer.Spans();
  ASSERT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  for (const Span& s : spans) {
    EXPECT_GE(s.start_us, 1);
    EXPECT_GE(s.dur_us, 0);
  }
}

}  // namespace
}  // namespace obs
}  // namespace swift
