#include "exec/tpch.h"

#include <gtest/gtest.h>

#include <set>

namespace swift {
namespace {

TpchConfig SmallConfig() {
  TpchConfig c;
  c.scale_factor = 0.002;
  return c;
}

TEST(TpchTest, GeneratesAllEightTables) {
  Catalog catalog;
  ASSERT_TRUE(GenerateTpch(SmallConfig(), &catalog).ok());
  for (const char* name :
       {"tpch_nation", "tpch_region", "tpch_supplier", "tpch_part",
        "tpch_partsupp", "tpch_customer", "tpch_orders", "tpch_lineitem"}) {
    auto t = catalog.Lookup(name);
    ASSERT_TRUE(t.ok()) << name;
    EXPECT_FALSE((*t)->rows.empty()) << name;
  }
}

TEST(TpchTest, NationAndRegionAreFixed) {
  auto nation = TpchNation();
  auto region = TpchRegion();
  EXPECT_EQ(nation->rows.size(), 25u);
  EXPECT_EQ(region->rows.size(), 5u);
  // Every n_regionkey references an existing region.
  for (const Row& r : nation->rows) {
    const int64_t rk = r[2].int64();
    EXPECT_GE(rk, 0);
    EXPECT_LT(rk, 5);
  }
}

TEST(TpchTest, RowCountsFollowProportions) {
  const double sf = 0.01;
  EXPECT_EQ(TpchRowCount("supplier", sf), 100);
  EXPECT_EQ(TpchRowCount("part", sf), 2000);
  EXPECT_EQ(TpchRowCount("partsupp", sf), 8000);
  EXPECT_EQ(TpchRowCount("customer", sf), 1500);
  EXPECT_EQ(TpchRowCount("orders", sf), 15000);
}

TEST(TpchTest, DeterministicForSameSeed) {
  TpchConfig c = SmallConfig();
  auto a = TpchOrders(c);
  auto b = TpchOrders(c);
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(a->rows.size(), 50); ++i) {
    EXPECT_EQ(a->rows[i][4].str(), b->rows[i][4].str());
  }
}

TEST(TpchTest, ForeignKeysResolve) {
  TpchConfig c = SmallConfig();
  Catalog catalog;
  ASSERT_TRUE(GenerateTpch(c, &catalog).ok());
  auto orders = *catalog.Lookup("tpch_orders");
  auto lineitem = *catalog.Lookup("tpch_lineitem");
  auto part = *catalog.Lookup("tpch_part");
  auto supplier = *catalog.Lookup("tpch_supplier");
  const int64_t max_order = static_cast<int64_t>(orders->rows.size());
  const int64_t max_part = static_cast<int64_t>(part->rows.size());
  const int64_t max_supp = static_cast<int64_t>(supplier->rows.size());
  for (const Row& r : lineitem->rows) {
    EXPECT_GE(r[0].int64(), 1);
    EXPECT_LE(r[0].int64(), max_order);
    EXPECT_GE(r[1].int64(), 1);
    EXPECT_LE(r[1].int64(), max_part);
    EXPECT_GE(r[2].int64(), 1);
    EXPECT_LE(r[2].int64(), max_supp);
  }
}

TEST(TpchTest, LineitemSupplierMatchesPartsupp) {
  // Q9 joins lineitem with partsupp on (partkey, suppkey); the generator
  // must guarantee every lineitem pair exists in partsupp.
  TpchConfig c = SmallConfig();
  auto partsupp = TpchPartsupp(c);
  auto lineitem = TpchLineitem(c);
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const Row& r : partsupp->rows) {
    pairs.insert({r[0].int64(), r[1].int64()});
  }
  for (const Row& r : lineitem->rows) {
    EXPECT_TRUE(pairs.count({r[1].int64(), r[2].int64()}) > 0)
        << "lineitem (part=" << r[1].int64() << ", supp=" << r[2].int64()
        << ") missing from partsupp";
  }
}

TEST(TpchTest, DatesAreIsoFormattedWithinRange) {
  auto orders = TpchOrders(SmallConfig());
  for (const Row& r : orders->rows) {
    const std::string& d = r[4].str();
    ASSERT_EQ(d.size(), 10u);
    EXPECT_EQ(d[4], '-');
    EXPECT_EQ(d[7], '-');
    EXPECT_GE(d, std::string("1992-01-01"));
    EXPECT_LE(d, std::string("1998-08-03"));
  }
}

TEST(TpchTest, PartNamesIncludeGreen) {
  // Q9 filters p_name like '%green%'; the color vocabulary must hit.
  auto part = TpchPart(SmallConfig());
  int green = 0;
  for (const Row& r : part->rows) {
    if (r[1].str().find("green") != std::string::npos) ++green;
  }
  EXPECT_GT(green, 0);
  EXPECT_LT(green, static_cast<int>(part->rows.size()));
}

TEST(TpchTest, DiscountAndTaxInRange) {
  auto li = TpchLineitem(SmallConfig());
  for (const Row& r : li->rows) {
    EXPECT_GE(r[6].float64(), 0.0);
    EXPECT_LE(r[6].float64(), 0.10);
    EXPECT_GE(r[7].float64(), 0.0);
    EXPECT_LE(r[7].float64(), 0.08);
  }
}

TEST(TpchTest, CatalogRejectsDuplicateRegister) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Register(TpchNation()).ok());
  EXPECT_EQ(catalog.Register(TpchNation()).code(),
            StatusCode::kAlreadyExists);
  catalog.Put(TpchNation());  // Put replaces silently
  EXPECT_TRUE(catalog.Lookup("tpch_nation").ok());
}

TEST(TpchTest, TaskSlicePartitionsAllRows) {
  auto part = TpchPart(SmallConfig());
  const int tasks = 7;
  std::size_t total = 0;
  for (int i = 0; i < tasks; ++i) {
    total += part->TaskSlice(i, tasks).num_rows();
  }
  EXPECT_EQ(total, part->rows.size());
  // Out-of-range slices are empty, not fatal.
  EXPECT_EQ(part->TaskSlice(-1, tasks).num_rows(), 0u);
  EXPECT_EQ(part->TaskSlice(tasks, tasks).num_rows(), 0u);
}

}  // namespace
}  // namespace swift
