// Tests for the Admin-side components of Fig. 2: the Executor Manager's
// self-reporting status cache and the shadow-controller mechanism.

#include <gtest/gtest.h>

#include "scheduler/executor_registry.h"
#include "scheduler/shadow_controller.h"

namespace swift {
namespace {

TEST(ExecutorRegistryTest, FirstReportRegisters) {
  ExecutorRegistry reg;
  EXPECT_FALSE(reg.Report(ExecutorId{0, 1}, 4242, 9000, 1.0));
  EXPECT_EQ(reg.size(), 1u);
  auto st = reg.Lookup(ExecutorId{0, 1});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->pid, 4242);
  EXPECT_EQ(st->tcp_port, 9000);
  EXPECT_EQ(st->restarts, 0);
}

TEST(ExecutorRegistryTest, SamePidIsHeartbeatNotRestart) {
  ExecutorRegistry reg;
  reg.Report(ExecutorId{0, 1}, 4242, 9000, 1.0);
  EXPECT_FALSE(reg.Report(ExecutorId{0, 1}, 4242, 9000, 5.0));
  auto st = reg.Lookup(ExecutorId{0, 1});
  EXPECT_EQ(st->restarts, 0);
  EXPECT_DOUBLE_EQ(st->last_report, 5.0);
}

TEST(ExecutorRegistryTest, NewPidSignalsRestart) {
  // Sec. IV-A: "Once the process is re-launched due to some failures,
  // its status is also reported... Swift Admin could know process
  // restart and initiate the failure handling process immediately."
  ExecutorRegistry reg;
  reg.Report(ExecutorId{2, 3}, 100, 9000, 1.0);
  ASSERT_TRUE(reg.AssignTask(ExecutorId{2, 3}, TaskRef{7, 4}).ok());
  EXPECT_TRUE(reg.Report(ExecutorId{2, 3}, 101, 9001, 2.0));
  auto st = reg.Lookup(ExecutorId{2, 3});
  EXPECT_EQ(st->restarts, 1);
  EXPECT_EQ(reg.total_restarts(), 1);
  // The task it was running is recoverable state for the failure handler.
  auto task = reg.RunningTask(ExecutorId{2, 3});
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(*task, (TaskRef{7, 4}));
}

TEST(ExecutorRegistryTest, TaskAssignmentLifecycle) {
  ExecutorRegistry reg;
  reg.Report(ExecutorId{0, 0}, 1, 1, 0.0);
  EXPECT_EQ(reg.AssignTask(ExecutorId{9, 9}, TaskRef{1, 0}).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(reg.AssignTask(ExecutorId{0, 0}, TaskRef{1, 0}).ok());
  EXPECT_EQ(reg.AssignTask(ExecutorId{0, 0}, TaskRef{2, 0}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(reg.ClearTask(ExecutorId{0, 0}).ok());
  EXPECT_FALSE(reg.RunningTask(ExecutorId{0, 0}).has_value());
  ASSERT_TRUE(reg.AssignTask(ExecutorId{0, 0}, TaskRef{2, 0}).ok());
}

TEST(ExecutorRegistryTest, MachineRevocationReturnsVictims) {
  ExecutorRegistry reg;
  for (int slot = 0; slot < 4; ++slot) {
    reg.Report(ExecutorId{1, slot}, 100 + slot, 9000, 0.0);
  }
  reg.Report(ExecutorId{2, 0}, 200, 9000, 0.0);
  ASSERT_TRUE(reg.AssignTask(ExecutorId{1, 0}, TaskRef{5, 0}).ok());
  ASSERT_TRUE(reg.AssignTask(ExecutorId{1, 2}, TaskRef{5, 2}).ok());
  EXPECT_EQ(reg.OnMachine(1).size(), 4u);
  auto victims = reg.RevokeMachine(1);
  EXPECT_EQ(victims.size(), 2u);
  EXPECT_EQ(reg.size(), 1u);  // machine 2 survives
  EXPECT_TRUE(reg.OnMachine(1).empty());
}

TEST(ShadowControllerTest, PublishAndAck) {
  ShadowControllerPair pair;
  auto e1 = pair.Publish("state-1");
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(*e1, 1);
  auto e2 = pair.Publish("state-2");
  EXPECT_EQ(*e2, 2);
  ASSERT_TRUE(pair.Acknowledge(1).ok());
  EXPECT_EQ(pair.acked_epoch(), 1);
  // Duplicate / stale acks are idempotent.
  ASSERT_TRUE(pair.Acknowledge(1).ok());
  EXPECT_EQ(pair.acked_epoch(), 1);
  // Acking beyond what was published is a protocol violation.
  EXPECT_FALSE(pair.Acknowledge(99).ok());
}

TEST(ShadowControllerTest, FailoverResumesFromAcknowledgedState) {
  ShadowControllerPair pair;
  (void)pair.Publish("A");
  pair.DrainReplication();
  (void)pair.Publish("B");  // never replicated
  auto resumed = pair.Failover();
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(resumed->has_value());
  EXPECT_EQ(**resumed, "A");
  EXPECT_EQ(pair.active_role(), ShadowControllerPair::Role::kShadow);
  EXPECT_EQ(pair.LastFailoverLoss(), 1);  // exactly the unreplicated epoch
  EXPECT_EQ(pair.failovers(), 1);
}

TEST(ShadowControllerTest, FailoverWithNothingReplicated) {
  ShadowControllerPair pair;
  (void)pair.Publish("only");
  auto resumed = pair.Failover();
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed->has_value());  // cold start
}

TEST(ShadowControllerTest, NoDoubleFailoverWithoutStandby) {
  ShadowControllerPair pair;
  (void)pair.Publish("A");
  pair.DrainReplication();
  ASSERT_TRUE(pair.Failover().ok());
  EXPECT_FALSE(pair.standby_alive());
  EXPECT_EQ(pair.Failover().status().code(),
            StatusCode::kResourceExhausted);
  // A freshly provisioned standby restores protection after re-sync.
  pair.ProvisionStandby();
  (void)pair.Publish("B");
  pair.DrainReplication();
  auto resumed = pair.Failover();
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(**resumed, "B");
}

TEST(ShadowControllerTest, PublishingContinuesAfterFailover) {
  ShadowControllerPair pair;
  (void)pair.Publish("A");
  pair.DrainReplication();
  ASSERT_TRUE(pair.Failover().ok());
  auto e = pair.Publish("post-failover");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, pair.published_epoch());
  EXPECT_GT(*e, 0);
}

}  // namespace
}  // namespace swift
