#include "runtime/local_runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "exec/tpch.h"

namespace swift {
namespace {

std::vector<std::string> Canonical(const Batch& b) {
  std::vector<std::string> rows;
  rows.reserve(b.rows.size());
  for (const Row& r : b.rows) {
    std::string s;
    for (const Value& v : r) {
      s += v.ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(cfg, runtime_.catalog()).ok());
  }

  LocalRuntime runtime_;
};

TEST_F(RuntimeTest, ScanFilterProject) {
  auto got = runtime_.ExecuteSql(
      "select n_name from tpch_nation where n_regionkey = 3");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Reference by hand over the generated table.
  auto nation = *runtime_.catalog()->Lookup("tpch_nation");
  std::vector<std::string> want;
  for (const Row& r : nation->rows) {
    if (r[2].int64() == 3) want.push_back(r[1].str() + "|");
  }
  std::sort(want.begin(), want.end());
  EXPECT_EQ(Canonical(*got), want);
  EXPECT_EQ(got->schema.num_fields(), 1u);
}

TEST_F(RuntimeTest, GlobalAggregate) {
  auto got = runtime_.ExecuteSql("select count(*) from tpch_orders");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto orders = *runtime_.catalog()->Lookup("tpch_orders");
  ASSERT_EQ(got->num_rows(), 1u);
  EXPECT_EQ((*got).rows[0][0].int64(),
            static_cast<int64_t>(orders->rows.size()));
}

TEST_F(RuntimeTest, GroupByMatchesReference) {
  auto got = runtime_.ExecuteSql(
      "select n_regionkey, count(*) as n, min(n_name) as first_name "
      "from tpch_nation group by n_regionkey");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto nation = *runtime_.catalog()->Lookup("tpch_nation");
  std::map<int64_t, std::pair<int64_t, std::string>> ref;
  for (const Row& r : nation->rows) {
    auto& [count, name] = ref[r[2].int64()];
    ++count;
    if (name.empty() || r[1].str() < name) name = r[1].str();
  }
  ASSERT_EQ(got->num_rows(), ref.size());
  for (const Row& r : got->rows) {
    const auto& [count, name] = ref.at(r[0].int64());
    EXPECT_EQ(r[1].int64(), count);
    EXPECT_EQ(r[2].str(), name);
  }
}

TEST_F(RuntimeTest, JoinMatchesReference) {
  auto got = runtime_.ExecuteSql(
      "select n_name, r_name from tpch_nation n "
      "join tpch_region r on n.n_regionkey = r.r_regionkey");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto nation = *runtime_.catalog()->Lookup("tpch_nation");
  auto region = *runtime_.catalog()->Lookup("tpch_region");
  std::vector<std::string> want;
  for (const Row& n : nation->rows) {
    for (const Row& r : region->rows) {
      if (n[2].int64() == r[0].int64()) {
        want.push_back(n[1].str() + "|" + r[1].str() + "|");
      }
    }
  }
  std::sort(want.begin(), want.end());
  EXPECT_EQ(Canonical(*got), want);
}

TEST_F(RuntimeTest, OrderByLimitIsGloballySorted) {
  auto got = runtime_.ExecuteSql(
      "select o_orderkey, o_totalprice from tpch_orders "
      "order by o_totalprice desc limit 10");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->num_rows(), 10u);
  for (std::size_t i = 1; i < got->rows.size(); ++i) {
    EXPECT_GE(got->rows[i - 1][1].float64(), got->rows[i][1].float64());
  }
  // The first row is the global maximum.
  auto orders = *runtime_.catalog()->Lookup("tpch_orders");
  double max_price = 0;
  for (const Row& r : orders->rows) {
    max_price = std::max(max_price, r[3].float64());
  }
  EXPECT_DOUBLE_EQ(got->rows[0][1].float64(), max_price);
}

TEST_F(RuntimeTest, SortModeAndHashModeAgree) {
  const char* q =
      "select c_mktsegment, count(*) as n, sum(o_totalprice) as total "
      "from tpch_customer c join tpch_orders o on c.c_custkey = o.o_custkey "
      "group by c_mktsegment";
  PlannerConfig sorted;
  sorted.sort_mode = true;
  PlannerConfig hashed;
  hashed.sort_mode = false;
  auto a = runtime_.ExecuteSql(q, sorted);
  auto b = runtime_.ExecuteSql(q, hashed);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(Canonical(*a), Canonical(*b));
  EXPECT_GT(a->num_rows(), 0u);
}

TEST_F(RuntimeTest, AllShuffleKindsProduceSameResult) {
  const char* q =
      "select n_regionkey, count(*) as n from tpch_nation group by "
      "n_regionkey";
  std::vector<std::vector<std::string>> results;
  for (auto kind : {ShuffleKind::kDirect, ShuffleKind::kLocal,
                    ShuffleKind::kRemote}) {
    LocalRuntimeConfig cfg;
    cfg.force_shuffle_kind = kind;
    LocalRuntime rt(cfg);
    TpchConfig tpch;
    tpch.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());
    auto got = rt.ExecuteSql(q);
    ASSERT_TRUE(got.ok()) << ShuffleKindToString(kind) << ": "
                          << got.status().ToString();
    results.push_back(Canonical(*got));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
}

TEST_F(RuntimeTest, SpillPathStillCorrect) {
  LocalRuntimeConfig cfg;
  cfg.force_shuffle_kind = ShuffleKind::kLocal;
  cfg.cache_memory_per_worker = 4096;  // force spills
  cfg.spill_root = ::testing::TempDir() + "/swift_rt_spill";
  LocalRuntime rt(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());
  auto got = rt.RunSql(
      "select o_custkey, count(*) as n from tpch_orders group by o_custkey");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GT(got->result.num_rows(), 0u);
  int64_t spilled = 0;
  for (int m = 0; m < rt.shuffle_service()->machines(); ++m) {
    spilled += rt.shuffle_service()->worker(m)->stats().spilled_slots;
  }
  EXPECT_GT(spilled, 0) << "tiny budget should have forced LRU spill";
}

TEST_F(RuntimeTest, StatsReportGraphletsAndShuffle) {
  auto report = runtime_.RunSql(
      "select n_name, r_name from tpch_nation n "
      "join tpch_region r on n.n_regionkey = r.r_regionkey "
      "order by n_name");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Sort mode: join emits barrier edge -> at least 2 graphlets.
  EXPECT_GE(report->stats.graphlets, 2);
  EXPECT_GT(report->stats.tasks_executed, 0);
  EXPECT_EQ(report->stats.tasks_rerun, 0);
  EXPECT_GT(report->stats.shuffle.bytes_transferred, 0);
}

TEST_F(RuntimeTest, RecoversFromInjectedCrash) {
  // Fail one scan task once; the job must still produce correct output.
  auto plan = PlanSql("select count(*) from tpch_orders",
                      *runtime_.catalog(), PlannerConfig{});
  ASSERT_TRUE(plan.ok());
  // Find the scan stage id.
  StageId scan = -1;
  for (const auto& [id, p] : plan->stages) {
    if (!p.scan_table.empty()) scan = id;
  }
  ASSERT_GE(scan, 0);
  runtime_.InjectFailureOnce(TaskRef{scan, 0}, FailureKind::kProcessCrash);
  auto report = runtime_.RunPlan(*plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto orders = *runtime_.catalog()->Lookup("tpch_orders");
  EXPECT_EQ(report->result.rows[0][0].int64(),
            static_cast<int64_t>(orders->rows.size()));
  EXPECT_GE(report->stats.recoveries, 1);
  EXPECT_GE(report->stats.tasks_rerun, 1);
}

TEST_F(RuntimeTest, RecoversFromCrashInLaterStage) {
  auto plan = PlanSql(
      "select n_regionkey, count(*) as n from tpch_nation group by "
      "n_regionkey", *runtime_.catalog(), PlannerConfig{});
  ASSERT_TRUE(plan.ok());
  StageId agg = -1;
  for (const auto& [id, p] : plan->stages) {
    for (const auto& op : p.ops) {
      if (op.kind == LocalOpDesc::Kind::kStreamedAggregate) agg = id;
    }
  }
  ASSERT_GE(agg, 0);
  runtime_.InjectFailureOnce(TaskRef{agg, 1}, FailureKind::kNetworkTimeout);
  auto report = runtime_.RunPlan(*plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->result.num_rows(), 5u);
  EXPECT_GE(report->stats.recoveries, 1);
}

TEST_F(RuntimeTest, ApplicationErrorIsNotRetried) {
  auto plan = PlanSql("select count(*) from tpch_nation",
                      *runtime_.catalog(), PlannerConfig{});
  ASSERT_TRUE(plan.ok());
  StageId scan = -1;
  for (const auto& [id, p] : plan->stages) {
    if (!p.scan_table.empty()) scan = id;
  }
  runtime_.InjectFailureOnce(TaskRef{scan, 0},
                             FailureKind::kApplicationError);
  auto report = runtime_.RunPlan(*plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kApplication);
}

TEST_F(RuntimeTest, RepeatedFailureExhaustsAttempts) {
  LocalRuntimeConfig cfg;
  cfg.max_task_attempts = 2;
  LocalRuntime rt(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());
  auto plan = PlanSql("select count(*) from tpch_nation", *rt.catalog(),
                      PlannerConfig{});
  ASSERT_TRUE(plan.ok());
  StageId scan = -1;
  for (const auto& [id, p] : plan->stages) {
    if (!p.scan_table.empty()) scan = id;
  }
  rt.InjectFailureOnce(TaskRef{scan, 0}, FailureKind::kProcessCrash);
  rt.InjectFailureOnce(TaskRef{scan, 0}, FailureKind::kProcessCrash);
  // Injection map holds one entry per task; re-inject after first fire
  // is not possible mid-run, so instead verify a single recovery works
  // under the tight attempt budget.
  auto report = rt.RunPlan(*plan);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
}

TEST_F(RuntimeTest, PaperQ9EndToEnd) {
  const char* q9 =
      "select nation, o_year, sum(amount) as sum_profit from ("
      " select n_name as nation, substr(o_orderdate, 1, 4) as o_year,"
      "  l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount"
      " from tpch_supplier s"
      " join tpch_lineitem l on s.s_suppkey = l.l_suppkey"
      " join tpch_partsupp ps on ps.ps_suppkey = l.l_suppkey and "
      "   ps.ps_partkey = l.l_partkey"
      " join tpch_part p on p.p_partkey = l.l_partkey"
      " join tpch_orders o on o.o_orderkey = l.l_orderkey"
      " join tpch_nation n on s.s_nationkey = n.n_nationkey"
      " where p_name like '%green%'"
      ") group by nation, o_year order by nation, o_year desc limit 999999";
  auto got = runtime_.ExecuteSql(q9);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_GT(got->num_rows(), 0u);
  ASSERT_EQ(got->schema.num_fields(), 3u);

  // Independent reference: plain C++ maps over the generated tables.
  auto lineitem = *runtime_.catalog()->Lookup("tpch_lineitem");
  auto part = *runtime_.catalog()->Lookup("tpch_part");
  auto supplier = *runtime_.catalog()->Lookup("tpch_supplier");
  auto partsupp = *runtime_.catalog()->Lookup("tpch_partsupp");
  auto orders = *runtime_.catalog()->Lookup("tpch_orders");
  auto nation = *runtime_.catalog()->Lookup("tpch_nation");

  std::map<int64_t, bool> green_part;
  for (const Row& r : part->rows) {
    green_part[r[0].int64()] = r[1].str().find("green") != std::string::npos;
  }
  std::map<int64_t, int64_t> supp_nation;
  for (const Row& r : supplier->rows) {
    supp_nation[r[0].int64()] = r[2].int64();
  }
  std::map<int64_t, std::string> nation_name;
  for (const Row& r : nation->rows) nation_name[r[0].int64()] = r[1].str();
  std::map<std::pair<int64_t, int64_t>, double> ps_cost;
  for (const Row& r : partsupp->rows) {
    ps_cost[{r[0].int64(), r[1].int64()}] = r[2].float64();
  }
  std::map<int64_t, std::string> order_year;
  for (const Row& r : orders->rows) {
    order_year[r[0].int64()] = r[4].str().substr(0, 4);
  }
  std::map<std::pair<std::string, std::string>, double> ref;
  for (const Row& l : lineitem->rows) {
    const int64_t pk = l[1].int64();
    if (!green_part[pk]) continue;
    const int64_t sk = l[2].int64();
    const double amount = l[5].float64() * (1.0 - l[6].float64()) -
                          ps_cost.at({pk, sk}) * l[4].float64();
    ref[{nation_name.at(supp_nation.at(sk)), order_year.at(l[0].int64())}] +=
        amount;
  }
  ASSERT_EQ(got->num_rows(), ref.size());
  for (const Row& r : got->rows) {
    auto it = ref.find({r[0].str(), r[1].str()});
    ASSERT_NE(it, ref.end()) << r[0].str() << "/" << r[1].str();
    EXPECT_NEAR(r[2].AsDouble(), it->second, 1e-6 * (1.0 + std::abs(it->second)));
  }
  // ORDER BY nation asc, o_year desc.
  for (std::size_t i = 1; i < got->rows.size(); ++i) {
    const auto& prev = got->rows[i - 1];
    const auto& cur = got->rows[i];
    if (prev[0].str() == cur[0].str()) {
      EXPECT_GE(prev[1].str(), cur[1].str());
    } else {
      EXPECT_LT(prev[0].str(), cur[0].str());
    }
  }
}

}  // namespace
}  // namespace swift
