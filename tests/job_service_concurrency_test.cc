#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/serde.h"
#include "exec/tpch.h"
#include "obs/metrics.h"
#include "runtime/local_runtime.h"
#include "service/job_service.h"
#include "sql/planner.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

// Concurrent execution correctness: N submitter threads over the shared
// runtime must produce results byte-identical to serial execution, must
// not deadlock under shuffle backpressure, and must not corrupt the
// runtime's previously single-job mutable state (fault injections,
// heartbeat clock).

void GenerateTinyTpch(Catalog* catalog) {
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(tpch, catalog).ok());
}

std::map<int, std::string> SerialOracle() {
  LocalRuntimeConfig cfg;
  cfg.machines = 2;
  cfg.executors_per_machine = 16;
  cfg.worker_threads = 4;
  LocalRuntime rt(cfg);
  GenerateTinyTpch(rt.catalog());
  std::map<int, std::string> oracle;
  for (int q : RunnableTpchQueries()) {
    auto sql = TpchQuerySql(q);
    EXPECT_TRUE(sql.ok());
    auto result = rt.ExecuteSql(*sql);
    EXPECT_TRUE(result.ok()) << "Q" << q << ": " << result.status().ToString();
    if (result.ok()) oracle[q] = SerializeBatch(*result);
  }
  return oracle;
}

// Eight submitter threads race mixed TPC-H plans through one service;
// every result must match the bytes the same query produces on an
// otherwise idle runtime.
TEST(JobServiceConcurrency, ResultsByteIdenticalToSerialExecution) {
  const std::map<int, std::string> oracle = SerialOracle();
  ASSERT_FALSE(oracle.empty());

  JobServiceConfig cfg;
  cfg.max_concurrent_jobs = 8;
  cfg.admission_queue_capacity = 512;
  cfg.runtime.machines = 2;
  cfg.runtime.executors_per_machine = 16;
  cfg.runtime.worker_threads = 4;
  JobService service(cfg);
  GenerateTinyTpch(service.catalog());

  constexpr int kThreads = 8;
  const std::vector<int> queries = RunnableTpchQueries();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      // Each thread walks the query list from a different offset so the
      // in-flight mix stays heterogeneous.
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const int q = queries[(i + static_cast<std::size_t>(t) * 3) %
                              queries.size()];
        auto sql = TpchQuerySql(q);
        ASSERT_TRUE(sql.ok());
        JobRequest req;
        req.sql = *sql;
        req.tenant = "thread-" + std::to_string(t % 4);
        req.priority = t % 3;
        auto outcome = service.RunSync(std::move(req));
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        ASSERT_TRUE(outcome->status.ok())
            << "Q" << q << ": " << outcome->status.ToString();
        if (SerializeBatch(outcome->report.result) != oracle.at(q)) {
          mismatches.fetch_add(1);
          ADD_FAILURE() << "Q" << q << " bytes diverged under concurrency";
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  service.Drain();
  const JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.failed, 0);
}

// The full concurrent mix under severe shuffle memory pressure: every
// writer fights the Cache Worker watermarks while eight jobs share the
// executor pool. Completion (not a hang) is the assertion — the PR 8
// forced-admission guard must keep draining even when every in-flight
// job is backpressured at once.
TEST(JobServiceConcurrency, NoDeadlockUnderShuffleBackpressure) {
  obs::MetricsRegistry reg;
  JobServiceConfig cfg;
  cfg.max_concurrent_jobs = 8;
  cfg.admission_queue_capacity = 512;
  cfg.runtime.machines = 2;
  cfg.runtime.executors_per_machine = 16;
  cfg.runtime.worker_threads = 4;
  cfg.runtime.metrics = &reg;
  cfg.runtime.force_shuffle_kind = ShuffleKind::kRemote;
  cfg.runtime.cache_memory_per_worker = 4 << 10;  // far below demand
  cfg.runtime.shuffle_put_retry_budget = 2;
  cfg.runtime.shuffle_put_wait_ms = 0.1;
  JobService service(cfg);
  GenerateTinyTpch(service.catalog());

  const std::vector<int> queries = RunnableTpchQueries();
  std::vector<std::shared_ptr<JobTicket>> tickets;
  for (int round = 0; round < 3; ++round) {
    for (int q : queries) {
      auto sql = TpchQuerySql(q);
      ASSERT_TRUE(sql.ok());
      JobRequest req;
      req.sql = *sql;
      req.tenant = "t" + std::to_string(q % 4);
      auto ticket = service.Submit(std::move(req));
      ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
      tickets.push_back(std::move(*ticket));
    }
  }
  for (const auto& t : tickets) {
    const JobOutcome& out = t->Wait();
    EXPECT_TRUE(out.status.ok()) << out.status.ToString();
  }
  EXPECT_GT(reg.CounterValue("shuffle.backpressure.rejections"), 0)
      << "budget was never under pressure: the test lost its teeth";
}

// A full admission queue rejects with kBackpressure instead of blocking
// the submitter or dropping the job silently.
TEST(JobServiceConcurrency, FullAdmissionQueueRejectsWithBackpressure) {
  JobServiceConfig cfg;
  cfg.max_concurrent_jobs = 1;
  cfg.admission_queue_capacity = 2;
  cfg.runtime.machines = 1;
  cfg.runtime.executors_per_machine = 16;
  cfg.runtime.worker_threads = 2;
  JobService service(cfg);
  GenerateTinyTpch(service.catalog());
  auto sql = TpchQuerySql(1);
  ASSERT_TRUE(sql.ok());

  int rejected = 0;
  std::vector<std::shared_ptr<JobTicket>> tickets;
  for (int i = 0; i < 32; ++i) {
    JobRequest req;
    req.sql = *sql;
    auto ticket = service.Submit(std::move(req));
    if (ticket.ok()) {
      tickets.push_back(std::move(*ticket));
    } else {
      ASSERT_TRUE(ticket.status().IsBackpressure())
          << ticket.status().ToString();
      rejected += 1;
    }
  }
  EXPECT_GT(rejected, 0) << "queue of 2 absorbed 32 instant submissions";
  for (const auto& t : tickets) {
    EXPECT_TRUE(t->Wait().status.ok());
  }
  const JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 32);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed + stats.rejected, 32);
}

// Regression: InjectFailureOnce entries are claimed per job. Before the
// multi-tenant service, RunPlan cleared the whole injection map when any
// job ended, so a concurrent job's pending injection could be wiped
// (never firing) or consumed by the wrong job (firing twice for one
// inject call). With claim semantics every injection fires exactly once.
TEST(JobServiceConcurrency, ConcurrentInjectionsFireExactlyOnce) {
  obs::MetricsRegistry reg;
  LocalRuntimeConfig cfg;
  cfg.machines = 2;
  cfg.executors_per_machine = 16;
  cfg.worker_threads = 4;
  cfg.metrics = &reg;
  LocalRuntime rt(cfg);
  GenerateTinyTpch(rt.catalog());
  auto sql = TpchQuerySql(1);
  ASSERT_TRUE(sql.ok());
  auto plan = PlanSql(*sql, *rt.catalog(), {});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Pick distinct injectable task refs that every run of this plan
  // executes.
  std::vector<TaskRef> targets;
  for (StageId s : plan->dag.topological_order()) {
    if (targets.size() >= 4) break;
    targets.push_back(TaskRef{s, 0});
  }
  ASSERT_GE(targets.size(), 2u);

  std::vector<std::thread> runners;
  for (const TaskRef& target : targets) {
    runners.emplace_back([&, target] {
      rt.InjectFailureOnce(target, FailureKind::kProcessCrash);
      auto report = rt.RunPlan(*plan);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    });
  }
  for (std::thread& t : runners) t.join();

  // Each injection was claimed by exactly one job and fired exactly
  // once: one task failure (and one recovery re-run) per injection,
  // never lost to another job's end-of-run sweep.
  EXPECT_EQ(reg.CounterValue("runtime.tasks.failed"),
            static_cast<int64_t>(targets.size()));
  EXPECT_EQ(reg.CounterValue("runtime.tasks.started"),
            reg.CounterValue("runtime.tasks.completed") +
                reg.CounterValue("runtime.tasks.failed"));
}

}  // namespace
}  // namespace swift
