#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/tpch.h"
#include "obs/trace_recorder.h"
#include "service/fair_share.h"
#include "service/gang_arbiter.h"
#include "service/job_service.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

// Fairness properties of the multi-tenant job service (DESIGN.md
// Sec. 16): weighted fair queuing over tenants, strict priority within
// a tenant, no starvation, and deterministic scheduling decisions.

// ---------------------------------------------------------------------
// FairSharePolicy unit properties.

std::vector<FairSharePolicy::Entry> RandomEntries(FairSharePolicy* policy,
                                                  Rng* rng, int n) {
  const std::vector<std::string> tenants = {"a", "b", "c", "d"};
  std::vector<FairSharePolicy::Entry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FairSharePolicy::Entry e;
    e.tenant = tenants[static_cast<std::size_t>(
        rng->UniformInt(0, static_cast<int64_t>(tenants.size()) - 1))];
    e.priority = static_cast<int>(rng->UniformInt(0, 2));
    e.seq = policy->NextSeq();
    policy->Activate(e.tenant);
    entries.push_back(std::move(e));
  }
  return entries;
}

// Draining a randomized backlog twice with the same seed must produce
// the same service order — the policy has no hidden nondeterminism.
TEST(FairSharePolicy, DeterministicUnderFixedSeed) {
  std::vector<std::vector<std::string>> orders;
  for (int round = 0; round < 2; ++round) {
    FairSharePolicy policy;
    Rng rng(20210419);
    std::vector<FairSharePolicy::Entry> pending =
        RandomEntries(&policy, &rng, 64);
    std::vector<std::string> order;
    while (!pending.empty()) {
      const std::size_t i = policy.PickIndex(pending);
      order.push_back(pending[i].tenant + "/p" +
                      std::to_string(pending[i].priority) + "/s" +
                      std::to_string(pending[i].seq));
      policy.Charge(pending[i].tenant, pending[i].priority, 1.0);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    }
    orders.push_back(std::move(order));
  }
  EXPECT_EQ(orders[0], orders[1]);
}

// Within one tenant, a higher priority class is always served before a
// lower one regardless of arrival order — no priority inversion.
TEST(FairSharePolicy, NoPriorityInversionWithinTenant) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    FairSharePolicy policy;
    policy.Activate("t");
    std::vector<FairSharePolicy::Entry> pending;
    const int n = static_cast<int>(rng.UniformInt(2, 12));
    for (int i = 0; i < n; ++i) {
      pending.push_back({"t", static_cast<int>(rng.UniformInt(0, 3)),
                         policy.NextSeq()});
    }
    int last_priority = 9;
    while (!pending.empty()) {
      const std::size_t i = policy.PickIndex(pending);
      EXPECT_LE(pending[i].priority, last_priority)
          << "priority " << pending[i].priority << " served after "
          << last_priority;
      last_priority = pending[i].priority;
      policy.Charge("t", pending[i].priority, 1.0);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

// Under a saturated backlog with equal weights, service counts per
// tenant stay within a bounded error of the ideal equal split — and no
// tenant is starved outright.
TEST(FairSharePolicy, BoundedShareErrorUnderSaturation) {
  FairSharePolicy policy;
  Rng rng(13);
  // Keep a standing backlog of ~40 entries; serve 400.
  std::vector<FairSharePolicy::Entry> pending =
      RandomEntries(&policy, &rng, 40);
  std::map<std::string, int> served;
  const int kRounds = 400;
  for (int i = 0; i < kRounds; ++i) {
    const std::size_t pick = policy.PickIndex(pending);
    served[pending[pick].tenant] += 1;
    policy.Charge(pending[pick].tenant, pending[pick].priority, 1.0);
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    // Replenish so every tenant always has pending work (saturation).
    std::vector<FairSharePolicy::Entry> more =
        RandomEntries(&policy, &rng, 1);
    pending.push_back(more[0]);
    while (pending.size() < 8) {
      more = RandomEntries(&policy, &rng, 1);
      pending.push_back(more[0]);
    }
  }
  ASSERT_EQ(served.size(), 4u) << "a tenant was starved for 400 rounds";
  for (const auto& [tenant, count] : served) {
    // Ideal share is 100 each; priorities skew effective weights, so
    // allow a wide but bounded band.
    EXPECT_GT(count, kRounds / 16) << tenant << " nearly starved";
    EXPECT_LT(count, kRounds / 2) << tenant << " dominated";
  }
}

// A tenant that was idle while others accumulated virtual time must not
// monopolize the queue when it returns: activation catches it up to the
// global virtual clock.
TEST(FairSharePolicy, IdleTenantCannotBankCredit) {
  FairSharePolicy policy;
  policy.Activate("busy");
  for (int i = 0; i < 100; ++i) policy.Charge("busy", 0, 1.0);
  // "fresh" shows up now; its virtual time starts at the global clock,
  // not zero.
  policy.Activate("fresh");
  EXPECT_GE(policy.VirtualTime("fresh"), policy.VirtualTime("busy") - 1.0);
  // Service alternates rather than running "fresh" 100 times in a row.
  std::map<std::string, int> served;
  for (int i = 0; i < 20; ++i) {
    std::vector<FairSharePolicy::Entry> pending = {
        {"busy", 0, policy.NextSeq()}, {"fresh", 0, policy.NextSeq()}};
    const std::size_t pick = policy.PickIndex(pending);
    served[pending[pick].tenant] += 1;
    policy.Charge(pending[pick].tenant, 0, 1.0);
  }
  EXPECT_GE(served["busy"], 5);
  EXPECT_GE(served["fresh"], 5);
}

// Weighted tenants receive proportional service: weight 3 vs 1 over a
// saturated backlog approaches a 3:1 split.
TEST(FairSharePolicy, WeightsScaleShares) {
  FairShareConfig cfg;
  cfg.tenant_weights["gold"] = 3.0;
  cfg.tenant_weights["bronze"] = 1.0;
  FairSharePolicy policy(cfg);
  policy.Activate("gold");
  policy.Activate("bronze");
  std::map<std::string, int> served;
  for (int i = 0; i < 200; ++i) {
    std::vector<FairSharePolicy::Entry> pending = {
        {"gold", 0, policy.NextSeq()}, {"bronze", 0, policy.NextSeq()}};
    const std::size_t pick = policy.PickIndex(pending);
    served[pending[pick].tenant] += 1;
    policy.Charge(pending[pick].tenant, 0, 1.0);
  }
  EXPECT_NEAR(static_cast<double>(served["gold"]) /
                  static_cast<double>(served["bronze"]),
              3.0, 0.5);
}

// ---------------------------------------------------------------------
// GangArbiter fairness under real thread contention.

// Three equally-weighted tenants hammer a pool that fits two gangs at a
// time; the executor-units each tenant is granted stay within a bounded
// band of the equal split, and nobody deadlocks or starves.
TEST(GangArbiter, EqualWeightTenantsSplitExecutorGrants) {
  GangArbiterConfig cfg;
  cfg.machines = 2;
  cfg.executors_per_machine = 4;  // capacity 8 = two gangs of 4
  GangArbiter arbiter(cfg);

  constexpr int kTenants = 3;
  constexpr int kGrantBudget = 120;
  std::atomic<int> grants{0};
  std::atomic<JobId> next_job{1};
  std::vector<std::thread> threads;
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      while (grants.fetch_add(1) < kGrantBudget) {
        const JobId job = next_job.fetch_add(1);
        JobRunOptions opts;
        opts.tenant = tenant;
        arbiter.BeginJob(job, opts);
        auto gang = arbiter.AcquireGang(job, std::vector<LocalityPref>(4));
        ASSERT_TRUE(gang.ok()) << gang.status().ToString();
        std::this_thread::yield();
        arbiter.ReleaseGang(job, *gang);
        arbiter.EndJob(job);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::map<std::string, double> units = arbiter.TenantGangUnits();
  ASSERT_EQ(units.size(), static_cast<std::size_t>(kTenants));
  double total = 0.0;
  for (const auto& [tenant, u] : units) total += u;
  for (const auto& [tenant, u] : units) {
    // Equal split would be 1/3 each; require every tenant lands within
    // a generous band (catches starvation and monopolies, tolerates
    // scheduling noise).
    EXPECT_GT(u / total, 0.15) << tenant << " starved: " << u << "/" << total;
    EXPECT_LT(u / total, 0.55) << tenant << " dominated: " << u << "/"
                               << total;
  }
}

// A gang that cannot fit on the surviving cluster fails fast instead of
// blocking forever.
TEST(GangArbiter, UnsatisfiableGangFailsInsteadOfWedging) {
  GangArbiterConfig cfg;
  cfg.machines = 2;
  cfg.executors_per_machine = 2;
  GangArbiter arbiter(cfg);
  arbiter.RevokeMachine(1);
  JobRunOptions opts;
  arbiter.BeginJob(1, opts);
  auto gang = arbiter.AcquireGang(1, std::vector<LocalityPref>(3));
  ASSERT_FALSE(gang.ok());
  EXPECT_TRUE(gang.status().IsResourceExhausted())
      << gang.status().ToString();
  arbiter.EndJob(1);
}

// Preemption: a waiting higher-class job flags a running class-0 job to
// yield, and the yield request clears once the holder releases.
TEST(GangArbiter, HigherClassWaiterFlagsLowerClassHolder) {
  GangArbiterConfig cfg;
  cfg.machines = 1;
  cfg.executors_per_machine = 4;
  GangArbiter arbiter(cfg);
  JobRunOptions low;
  low.priority = 0;
  arbiter.BeginJob(1, low);
  auto held = arbiter.AcquireGang(1, std::vector<LocalityPref>(4));
  ASSERT_TRUE(held.ok());

  JobRunOptions high;
  high.priority = 2;
  arbiter.BeginJob(2, high);
  std::thread waiter([&] {
    auto gang = arbiter.AcquireGang(2, std::vector<LocalityPref>(4));
    ASSERT_TRUE(gang.ok()) << gang.status().ToString();
    arbiter.ReleaseGang(2, *gang);
  });
  // The waiter cannot fit, so it must flag job 1 to yield.
  while (!arbiter.ShouldYield(1)) std::this_thread::yield();
  EXPECT_GE(arbiter.preemptions(), 1);
  arbiter.ReleaseGang(1, *held);  // cooperative yield at wave boundary
  waiter.join();
  EXPECT_FALSE(arbiter.ShouldYield(1)) << "yield flag survived the release";
  arbiter.EndJob(2);
  arbiter.EndJob(1);
}

// ---------------------------------------------------------------------
// Service-level starvation freedom with randomized arrivals.

// Randomized multi-tenant arrivals: every admitted job completes (no
// starvation, no lost tickets), and the per-tenant completion counts
// cover every tenant.
TEST(JobService, RandomizedArrivalsAllComplete) {
  JobServiceConfig cfg;
  cfg.max_concurrent_jobs = 4;
  cfg.admission_queue_capacity = 256;
  cfg.runtime.machines = 2;
  cfg.runtime.executors_per_machine = 16;
  cfg.runtime.worker_threads = 4;
  JobService service(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(tpch, service.catalog()).ok());

  Rng rng(99);
  const std::vector<int> queries = RunnableTpchQueries();
  const std::vector<std::string> tenants = {"a", "b", "c"};
  std::vector<std::shared_ptr<JobTicket>> tickets;
  std::map<std::string, int> submitted_by_tenant;
  for (int i = 0; i < 48; ++i) {
    JobRequest req;
    const int q = queries[static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<int64_t>(queries.size()) - 1))];
    auto sql = TpchQuerySql(q);
    ASSERT_TRUE(sql.ok());
    req.sql = *sql;
    // Skewed arrivals: tenant "a" floods the first half.
    req.tenant = i < 24 ? "a"
                        : tenants[static_cast<std::size_t>(
                              rng.UniformInt(0, 2))];
    req.priority = static_cast<int>(rng.UniformInt(0, 2));
    submitted_by_tenant[req.tenant] += 1;
    auto ticket = service.Submit(std::move(req));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    tickets.push_back(std::move(*ticket));
  }
  std::map<std::string, int> completed_by_tenant;
  for (const auto& t : tickets) {
    const JobOutcome& out = t->Wait();
    EXPECT_TRUE(out.status.ok()) << out.status.ToString();
    if (out.status.ok()) completed_by_tenant[out.tenant] += 1;
  }
  service.Drain();
  EXPECT_EQ(completed_by_tenant, submitted_by_tenant);
  const JobService::Stats stats = service.stats();
  EXPECT_EQ(stats.submitted, 48);
  EXPECT_EQ(stats.completed, 48);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.rejected, 0);
}

// With one driver, admission order is completion order, so job-level
// spans prove the same-tenant priority ordering end to end: a class-2
// job submitted after two class-0 jobs runs before both.
TEST(JobService, HighPriorityJobOvertakesQueuedLowPriority) {
  obs::TraceRecorder tracer;
  JobServiceConfig cfg;
  cfg.max_concurrent_jobs = 1;
  cfg.runtime.machines = 2;
  cfg.runtime.executors_per_machine = 16;
  cfg.runtime.worker_threads = 2;
  cfg.runtime.tracer = &tracer;
  JobService service(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(tpch, service.catalog()).ok());
  auto sql = TpchQuerySql(1);
  ASSERT_TRUE(sql.ok());

  auto submit = [&](int priority, const std::string& label) {
    JobRequest req;
    req.sql = *sql;
    req.tenant = "t";
    req.priority = priority;
    req.label = label;
    auto ticket = service.Submit(std::move(req));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
  };
  // The first job occupies the single driver; the rest queue behind it
  // and are re-ordered by the fair-share admission policy.
  constexpr int kLows = 6;
  submit(0, "blocker");
  for (int i = 0; i < kLows; ++i) submit(0, "low-" + std::to_string(i));
  submit(2, "urgent");
  service.Drain();

  std::vector<std::string> completion_order;
  for (const obs::Span& s : tracer.Spans()) {
    if (s.category == "job") completion_order.push_back(s.name);
  }
  ASSERT_EQ(completion_order.size(), static_cast<std::size_t>(kLows) + 2);
  auto pos = [&](const std::string& name) {
    for (std::size_t i = 0; i < completion_order.size(); ++i) {
      if (completion_order[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  // The driver may have popped one low job in the instant before
  // "urgent" was submitted; every low still queued at that point must
  // run after it.
  int lows_after_urgent = 0;
  for (int i = 0; i < kLows; ++i) {
    if (pos("low-" + std::to_string(i)) > pos("urgent")) {
      lows_after_urgent += 1;
    }
  }
  EXPECT_GE(lows_after_urgent, kLows - 1);
}

}  // namespace
}  // namespace swift
