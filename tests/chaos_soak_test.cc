#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/tpch.h"
#include "obs/metrics.h"
#include "runtime/local_runtime.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

// Chaos soak (ctest label `chaos_smoke`): the runnable TPC-H suite
// executed under a matrix of seeded fault schedules — task crashes,
// flaky links, payload bit-flips, a mid-wave machine loss, and all of
// them combined. Every run must return byte-identical results to the
// clean run with a bounded number of task re-runs; across the matrix
// the paper's kInputFailure and kOutputFailure scenarios and the
// retry-in-place transient-read path must each fire at least once.

std::vector<std::string> Canonical(const Batch& b) {
  std::vector<std::string> rows;
  rows.reserve(b.rows.size());
  for (const Row& r : b.rows) {
    std::string s;
    for (const Value& v : r) {
      s += v.ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::unique_ptr<LocalRuntime> MakeRuntime(LocalRuntimeConfig cfg = {}) {
  auto rt = std::make_unique<LocalRuntime>(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  EXPECT_TRUE(GenerateTpch(tpch, rt->catalog()).ok());
  return rt;
}

struct ChaosSchedule {
  const char* name;
  FaultSchedule fs;
  /// Spill-path schedules shrink the Cache Worker budget and enable a
  /// spill dir so the injected faults have spill files to hit; Remote
  /// shuffle is forced because sf-0.001 edges are otherwise Direct.
  int64_t cache_budget = 0;  ///< 0 = default
  bool spill = false;
};

LocalRuntimeConfig ApplySchedule(const ChaosSchedule& sched) {
  LocalRuntimeConfig cfg;
  cfg.fault_schedule = sched.fs;
  if (sched.cache_budget > 0) cfg.cache_memory_per_worker = sched.cache_budget;
  if (sched.spill) {
    cfg.spill_root =
        ::testing::TempDir() + "/swift_chaos_spill_" + sched.name;
    cfg.force_shuffle_kind = ShuffleKind::kRemote;
  }
  return cfg;
}

std::vector<ChaosSchedule> Schedules() {
  std::vector<ChaosSchedule> out;
  {
    FaultSchedule fs;
    fs.seed = 11;
    fs.task_crash_p = 0.25;
    fs.max_task_crashes = 16;
    out.push_back({"task-crashes", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 12;
    fs.task_crash_p = 0.2;
    fs.task_crash_kind = FailureKind::kNetworkTimeout;
    fs.max_task_crashes = 16;
    out.push_back({"network-timeouts", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 13;
    fs.read_timeout_p = 0.5;
    fs.timeouts_per_victim = 2;
    fs.max_read_timeouts = 1 << 20;
    out.push_back({"flaky-links", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 14;
    fs.corrupt_p = 0.5;
    fs.max_corruptions = 16;
    out.push_back({"bit-corruption", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 15;
    fs.kill_machine = 1;
    fs.kill_after_task_starts = 3;  // mid-wave, first job of the suite
    out.push_back({"machine-loss", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 16;
    fs.task_crash_p = 0.12;
    fs.max_task_crashes = 8;
    fs.read_timeout_p = 0.2;
    fs.max_read_timeouts = 1 << 20;
    fs.corrupt_p = 0.15;
    fs.max_corruptions = 8;
    fs.kill_machine = 2;
    fs.kill_after_task_starts = 7;
    out.push_back({"combined", fs});
  }
  {
    // Transient spill-write errors: each victim's first write attempt
    // fails, the in-place retry lands it.
    FaultSchedule fs;
    fs.seed = 17;
    fs.spill_write_fail_p = 0.5;
    fs.spill_write_fails_per_victim = 1;
    fs.max_spill_write_faults = 1 << 10;
    out.push_back({"spill-write-faults", fs, /*cache_budget=*/2 << 10,
                   /*spill=*/true});
  }
  {
    // Transient spill-read errors/short reads, under the retry budget.
    FaultSchedule fs;
    fs.seed = 18;
    fs.spill_read_fail_p = 0.5;
    fs.spill_read_fails_per_victim = 2;
    fs.max_spill_read_faults = 1 << 10;
    out.push_back({"spill-read-faults", fs, /*cache_budget=*/2 << 10,
                   /*spill=*/true});
  }
  {
    // Permanent spill loss (victims never read back) combined with a
    // mid-wave machine loss: both escalation paths at once. The global
    // fault cap bounds the chaos so recovery converges.
    FaultSchedule fs;
    fs.seed = 19;
    fs.spill_read_fail_p = 0.5;
    fs.spill_read_fails_per_victim = 1 << 10;
    fs.max_spill_read_faults = 6;
    fs.kill_machine = 1;
    fs.kill_after_task_starts = 5;
    out.push_back({"spill-loss+machine-loss", fs, /*cache_budget=*/2 << 10,
                   /*spill=*/true});
  }
  return out;
}

TEST(ChaosSoak, TpchSuiteByteIdenticalUnderFaultMatrix) {
  const std::vector<int> queries = RunnableTpchQueries();
  ASSERT_FALSE(queries.empty());

  // Clean reference run: one fault-free runtime over the whole suite.
  std::map<int, std::vector<std::string>> want;
  {
    auto rt = MakeRuntime();
    for (int q : queries) {
      auto sql = TpchQuerySql(q);
      ASSERT_TRUE(sql.ok()) << sql.status().ToString();
      auto got = rt->ExecuteSql(*sql);
      ASSERT_TRUE(got.ok()) << "Q" << q << ": " << got.status().ToString();
      want[q] = Canonical(*got);
    }
  }

  // Matrix-wide fault accounting.
  int64_t input_failures = 0;
  int64_t output_failures = 0;
  int64_t task_crashes = 0;
  int64_t machine_failures = 0;
  int64_t corrupt_retries = 0;
  int64_t read_retries = 0;
  int64_t read_timeouts = 0;
  int64_t spill_io_errors = 0;
  int64_t spill_io_retries = 0;
  int64_t spill_lost_slots = 0;

  for (const ChaosSchedule& sched : Schedules()) {
    SCOPED_TRACE(sched.name);
    auto rt = MakeRuntime(ApplySchedule(sched));
    for (int q : queries) {
      SCOPED_TRACE("Q" + std::to_string(q));
      auto sql = TpchQuerySql(q);
      ASSERT_TRUE(sql.ok());
      auto report = rt->RunSql(*sql);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(Canonical(report->result), want[q])
          << "results diverged under injected faults";
      const JobRunStats& s = report->stats;
      // Bounded recovery: with max_task_attempts = 3, no task runs more
      // than twice beyond its first attempt.
      const int fresh = s.tasks_executed - s.tasks_rerun;
      EXPECT_LE(s.tasks_rerun, 2 * fresh) << "task re-runs unbounded";
      auto by_case = s.recoveries_by_case;
      input_failures += by_case[RecoveryCase::kInputFailure];
      output_failures += by_case[RecoveryCase::kOutputFailure];
      machine_failures += s.machine_failures;
      corrupt_retries += s.corrupt_read_retries;
    }
    // Shuffle/injector counters are cumulative per runtime.
    const ShuffleServiceStats ss = rt->shuffle_service()->stats();
    read_retries += ss.read_retries;
    read_timeouts += ss.read_timeouts;
    const CacheWorkerStats ws = rt->shuffle_service()->worker_stats();
    spill_io_errors += ws.spill_io_errors;
    spill_io_retries += ws.spill_io_retries;
    spill_lost_slots += ws.spill_lost_slots;
    ASSERT_NE(rt->fault_injector(), nullptr);
    task_crashes += rt->fault_injector()->stats().task_crashes;
  }

  // Every paper scenario the schedules target actually fired somewhere.
  EXPECT_GE(task_crashes, 1);
  EXPECT_GE(input_failures, 1) << "no run hit Fig. 7(a) input failure";
  EXPECT_GE(output_failures, 1) << "no run hit Fig. 7(b) output failure";
  EXPECT_GE(machine_failures, 1);
  EXPECT_GE(read_timeouts, 1);
  EXPECT_GE(read_retries, 1) << "no transient read was retried in place";
  EXPECT_GE(corrupt_retries, 1) << "no CRC-rejected payload was re-fetched";
  EXPECT_GE(spill_io_errors, 1) << "no spill-path fault was exercised";
  EXPECT_GE(spill_io_retries, 1) << "no transient spill fault was retried";
  EXPECT_GE(spill_lost_slots, 1)
      << "no permanent spill loss escalated to recovery";
}

// The metrics registry must stay in lockstep with the per-report
// JobRunStats, the shuffle service's stats struct, and the chaos
// engine's own ledger — under every schedule, not just clean runs.
// bench_chaos_matrix reads the registry instead of the structs; this
// test is what makes that substitution safe.
TEST(ChaosSoak, RegistryMatchesInjectorAndRunStats) {
  const std::vector<int> queries = RunnableTpchQueries();
  ASSERT_FALSE(queries.empty());

  for (const ChaosSchedule& sched : Schedules()) {
    SCOPED_TRACE(sched.name);
    obs::MetricsRegistry reg;
    LocalRuntimeConfig cfg = ApplySchedule(sched);
    cfg.metrics = &reg;
    auto rt = MakeRuntime(cfg);

    // Suite-wide sums of the per-report stats the registry mirrors.
    int64_t tasks_executed = 0;
    int64_t tasks_rerun = 0;
    int64_t recoveries = 0;
    int64_t resends = 0;
    int64_t machine_failures = 0;
    int64_t corrupt_retries = 0;
    int64_t restart_equivalent = 0;
    std::map<RecoveryCase, int64_t> by_case;
    for (int q : queries) {
      SCOPED_TRACE("Q" + std::to_string(q));
      auto sql = TpchQuerySql(q);
      ASSERT_TRUE(sql.ok());
      auto report = rt->RunSql(*sql);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      const JobRunStats& s = report->stats;
      tasks_executed += s.tasks_executed;
      tasks_rerun += s.tasks_rerun;
      recoveries += s.recoveries;
      resends += s.resend_notifications;
      machine_failures += s.machine_failures;
      corrupt_retries += s.corrupt_read_retries;
      restart_equivalent += s.job_restart_equivalent_tasks;
      for (const auto& [kase, n] : s.recoveries_by_case) by_case[kase] += n;
    }

    // Runtime counters vs JobRunStats sums.
    EXPECT_EQ(reg.CounterValue("runtime.tasks.started"), tasks_executed);
    EXPECT_EQ(reg.CounterValue("runtime.tasks.started"),
              reg.CounterValue("runtime.tasks.completed") +
                  reg.CounterValue("runtime.tasks.failed"));
    EXPECT_EQ(reg.CounterValue("runtime.tasks.rerun"), tasks_rerun);
    EXPECT_EQ(reg.CounterValue("runtime.recoveries"), recoveries);
    EXPECT_EQ(reg.CounterValue("runtime.resend_notifications"), resends);
    EXPECT_EQ(reg.CounterValue("runtime.machine_failures"), machine_failures);
    EXPECT_EQ(reg.CounterValue("runtime.corrupt_read_retries"),
              corrupt_retries);
    EXPECT_EQ(reg.CounterValue("runtime.restart_equivalent_tasks"),
              restart_equivalent);
    int64_t case_total = 0;
    for (const auto& [kase, n] : by_case) {
      EXPECT_EQ(reg.CounterValue("runtime.recovery." +
                                 std::string(RecoveryCaseToString(kase))),
                n);
      case_total += n;
    }
    EXPECT_EQ(reg.CounterValue("runtime.recoveries"), case_total);

    // Shuffle counters vs the service's stats struct and the injector.
    const ShuffleServiceStats ss = rt->shuffle_service()->stats();
    EXPECT_EQ(reg.CounterValue("shuffle.read_retries"), ss.read_retries);
    EXPECT_EQ(reg.CounterValue("shuffle.read_timeouts"), ss.read_timeouts);
    EXPECT_EQ(reg.CounterValue("shuffle.failover_reads"), ss.failover_reads);
    EXPECT_EQ(reg.CounterValue("shuffle.corrupt_payloads"),
              ss.corrupt_payloads);
    // Pressure/quota/spill-fault counters stay in lockstep too.
    const CacheWorkerStats ws = rt->shuffle_service()->worker_stats();
    EXPECT_EQ(reg.CounterValue("shuffle.backpressure.rejections"),
              ws.backpressure_rejections);
    EXPECT_EQ(reg.CounterValue("shuffle.backpressure.rejected_bytes"),
              ws.bytes_rejected);
    EXPECT_EQ(reg.CounterValue("shuffle.backpressure.forced_admits"),
              ws.forced_admits);
    EXPECT_EQ(reg.CounterValue("shuffle.backpressure.waits"),
              ss.put_backpressure_waits);
    EXPECT_EQ(reg.CounterValue("shuffle.quota.evictions"), ws.quota_evictions);
    EXPECT_EQ(reg.CounterValue("shuffle.spill.io_errors"), ws.spill_io_errors);
    EXPECT_EQ(reg.CounterValue("shuffle.spill.retries"), ws.spill_io_retries);
    EXPECT_EQ(reg.CounterValue("shuffle.spill.lost_slots"),
              ws.spill_lost_slots);
    ASSERT_NE(rt->fault_injector(), nullptr);
    const FaultInjectorStats fi = rt->fault_injector()->stats();
    EXPECT_EQ(reg.CounterValue("shuffle.read_timeouts"), fi.read_timeouts);
    EXPECT_EQ(reg.CounterValue("shuffle.corrupt_payloads"), fi.corruptions);
    // Every injected crash surfaced as a failed (then recovered) task.
    EXPECT_GE(reg.CounterValue("runtime.tasks.failed"), fi.task_crashes);

    // Machine loss: each detection feeds the detection-delay histogram
    // exactly once, and the delay is bounded by the heartbeat budget
    // that the misses counter tracks.
    const obs::HistogramSnapshot delay =
        reg.HistogramValue("fault.detection_delay_s");
    EXPECT_EQ(delay.count, reg.CounterValue("runtime.machine_failures"));
    if (sched.fs.kill_machine >= 0) {
      EXPECT_GE(delay.count, 1) << "machine loss was never detected";
      EXPECT_GE(delay.min, 0.0);
      EXPECT_GE(reg.CounterValue("fault.heartbeat.misses"), 0);
    }
  }
}

}  // namespace
}  // namespace swift
