#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/tpch.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "runtime/local_runtime.h"
#include "shuffle/cache_worker.h"
#include "shuffle/shuffle_service.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

// Pressure suite (ctest label `pressure_smoke`): the shuffle tier under
// memory and spill-disk pressure must throttle writers instead of
// failing or OOMing, keep one job from flushing another's hot slots,
// and survive injected spill-file IO faults without changing results.

ShuffleSlotKey Key(int src_task, int dst_task, JobId job = 1,
                   StageId src = 0, StageId dst = 1) {
  return ShuffleSlotKey{job, src, src_task, dst, dst_task};
}

std::string Payload(int writer, int seq, std::size_t size) {
  std::string s;
  s.reserve(size);
  const std::string stamp =
      "w" + std::to_string(writer) + "s" + std::to_string(seq) + ":";
  while (s.size() < size) s += stamp;
  s.resize(size);
  return s;
}

// --- Tentpole: writer→reader flow control -------------------------------

// 8 open-loop writers against one slow reader and a budget ~16x smaller
// than the offered data, spilling disabled. Flow control must (a) never
// deadlock, (b) keep peak resident bytes under the hard watermark plus
// one payload, and (c) deliver every byte unchanged.
TEST(ShufflePressureTest, EightWritersOneSlowReaderBoundedPeakNoDeadlock) {
  constexpr int kWriters = 8;
  constexpr int kSlotsPerWriter = 32;
  constexpr std::size_t kPayload = 2048;
  ShuffleService::Config sc;
  sc.machines = 1;
  sc.cache_memory_per_worker = 16 << 10;  // 512 KiB offered vs 16 KiB budget
  sc.retain_for_recovery = false;         // reads drain memory
  sc.put_retry_budget = 1 << 20;  // never force: the reader always drains
  sc.put_wait_ms = 0.5;
  ShuffleService service(sc);

  std::vector<std::thread> writers;
  std::atomic<int> write_errors{0};
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int s = 0; s < kSlotsPerWriter; ++s) {
        Status st = service.WritePartition(ShuffleKind::kRemote, Key(w, s),
                                           Payload(w, s, kPayload),
                                           /*writer_machine=*/0,
                                           /*pipelined=*/false);
        if (!st.ok()) write_errors.fetch_add(1);
      }
    });
  }

  // The slow reader drains whatever has landed, in arrival-agnostic
  // round-robin order — a reader pinned to one not-yet-written slot
  // would be waiting on a writer that waits on the reader.
  std::map<std::pair<int, int>, std::string> got;
  while (got.size() < static_cast<std::size_t>(kWriters * kSlotsPerWriter)) {
    for (int w = 0; w < kWriters; ++w) {
      for (int s = 0; s < kSlotsPerWriter; ++s) {
        if (got.count({w, s}) != 0) continue;
        auto r = service.ReadPartition(ShuffleKind::kRemote, Key(w, s),
                                       /*reader_machine=*/0,
                                       /*writer_machine=*/0);
        if (r.ok()) got[{w, s}] = std::string(r->view());
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));  // slow
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(write_errors.load(), 0);
  // Byte-identical to the unpressured run (the generator is the oracle).
  for (int w = 0; w < kWriters; ++w) {
    for (int s = 0; s < kSlotsPerWriter; ++s) {
      const std::string& payload = got[{w, s}];
      EXPECT_EQ(payload, Payload(w, s, kPayload)) << "w" << w << " s" << s;
    }
  }
  const CacheWorkerStats ws = service.worker_stats();
  // Admission is atomic under the worker lock: resident bytes never pass
  // the hard watermark by more than one payload (and only via reload /
  // forced overshoot, neither of which this test needs).
  EXPECT_LE(ws.peak_memory_in_use,
            sc.cache_memory_per_worker + static_cast<int64_t>(kPayload));
  EXPECT_EQ(ws.forced_admits, 0) << "a drained writer should never force";
  EXPECT_GT(ws.backpressure_rejections, 0) << "no pressure was exercised";
  EXPECT_GT(service.stats().put_backpressure_waits, 0);
  // Everything written was eventually consumed; rejected bytes stayed
  // outside the conservation law.
  EXPECT_EQ(ws.bytes_written, ws.bytes_consumed + ws.bytes_evicted_unconsumed);
  EXPECT_EQ(ws.bytes_written,
            static_cast<int64_t>(kWriters * kSlotsPerWriter * kPayload));
}

// --- Tentpole acceptance: 4x-budget workload, spilling disabled ---------

// The full runnable TPC-H suite forced through Remote shuffle with the
// per-worker budget sized to a quarter of the clean run's shuffle volume
// and no spill dir. Backpressure (with the forced-admission deadlock
// guard, since retained slots pin until RemoveJob) must carry every job
// to completion: no ResourceExhausted, results byte-identical.
TEST(ShufflePressureTest, RuntimeCompletesAt4xBudgetWithSpillDisabled) {
  const std::vector<int> queries = RunnableTpchQueries();
  ASSERT_FALSE(queries.empty());

  auto canonical = [](const Batch& b) {
    std::vector<std::string> rows;
    rows.reserve(b.rows.size());
    for (const Row& r : b.rows) {
      std::string s;
      for (const Value& v : r) {
        s += v.ToString();
        s += '|';
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  // Clean reference run; also measures the suite's shuffle volume.
  std::map<int, std::vector<std::string>> want;
  int64_t clean_bytes_written = 0;
  {
    LocalRuntimeConfig cfg;
    cfg.force_shuffle_kind = ShuffleKind::kRemote;
    LocalRuntime rt(cfg);
    TpchConfig tpch;
    tpch.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());
    for (int q : queries) {
      auto sql = TpchQuerySql(q);
      ASSERT_TRUE(sql.ok());
      auto got = rt.ExecuteSql(*sql);
      ASSERT_TRUE(got.ok()) << "Q" << q << ": " << got.status().ToString();
      want[q] = canonical(*got);
    }
    clean_bytes_written = rt.shuffle_service()->worker_stats().bytes_written;
  }
  ASSERT_GT(clean_bytes_written, 0);

  // Pressured run: every worker gets ~1/4 of its clean-run share.
  LocalRuntimeConfig cfg;
  cfg.force_shuffle_kind = ShuffleKind::kRemote;
  cfg.cache_memory_per_worker =
      std::max<int64_t>(1 << 10, clean_bytes_written / (cfg.machines * 4));
  cfg.shuffle_put_retry_budget = 4;  // retained slots never drain mid-job:
  cfg.shuffle_put_wait_ms = 0.2;     // escalate to forced admission quickly
  LocalRuntime rt(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());
  for (int q : queries) {
    SCOPED_TRACE("Q" + std::to_string(q));
    auto sql = TpchQuerySql(q);
    ASSERT_TRUE(sql.ok());
    auto got = rt.ExecuteSql(*sql);
    ASSERT_TRUE(got.ok()) << "backpressure must not fail the job: "
                          << got.status().ToString();
    EXPECT_EQ(canonical(*got), want[q]) << "results diverged under pressure";
  }
  const CacheWorkerStats ws = rt.shuffle_service()->worker_stats();
  EXPECT_GT(ws.backpressure_rejections, 0) << "budget was never under pressure";
  EXPECT_GT(ws.forced_admits, 0)
      << "pinned-slot pressure should exercise the deadlock guard";
}

// --- Spill-path fault tolerance -----------------------------------------

std::string TempDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CacheWorkerOptions TinyWorker(const char* dirname) {
  CacheWorkerOptions o;
  o.memory_budget_bytes = 64;
  o.spill_dir = TempDir(dirname);
  return o;
}

TEST(ShufflePressureTest, TransientSpillReadFaultsRetryInPlace) {
  FaultSchedule fs;
  fs.seed = 21;
  fs.spill_read_fail_p = 1.0;
  fs.spill_read_fails_per_victim = 2;  // < spill_io_retries: transient
  fs.max_spill_read_faults = 1 << 10;
  FaultInjector injector(fs);
  CacheWorker cw(TinyWorker("swift_pressure_transient_read"));
  cw.set_fault_injector(&injector);

  const std::string a(40, 'a'), b(40, 'b');
  ASSERT_TRUE(cw.Put(Key(0, 0), a, 0).ok());
  ASSERT_TRUE(cw.Put(Key(1, 0), b, 0).ok());  // spills the first slot
  ASSERT_GE(cw.stats().spilled_slots, 1);
  auto r = cw.Peek(Key(0, 0));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->view(), a);
  const CacheWorkerStats s = cw.stats();
  EXPECT_GE(s.spill_io_errors, 2);
  EXPECT_GE(s.spill_io_retries, 2);
  EXPECT_EQ(s.spill_lost_slots, 0);
  EXPECT_GE(injector.stats().spill_read_faults, 2);
}

TEST(ShufflePressureTest, PermanentSpillReadLossDropsSlotForRecovery) {
  FaultSchedule fs;
  fs.seed = 22;
  fs.spill_read_fail_p = 1.0;
  fs.spill_read_fails_per_victim = 1 << 10;  // beyond any retry budget
  fs.max_spill_read_faults = 1 << 10;
  FaultInjector injector(fs);
  CacheWorker cw(TinyWorker("swift_pressure_permanent_read"));
  cw.set_fault_injector(&injector);

  ASSERT_TRUE(cw.Put(Key(0, 0), std::string(40, 'a'), 0).ok());
  ASSERT_TRUE(cw.Put(Key(1, 0), std::string(40, 'b'), 0).ok());
  ASSERT_GE(cw.stats().spilled_slots, 1);
  // The spilled slot is permanently unreadable: the error surfaces as
  // IOError once, then the slot is gone so the service's re-probe sees
  // NotFound and escalates to replica failover / producer re-run.
  auto r = cw.Peek(Key(0, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
  EXPECT_EQ(cw.Get(Key(0, 0)).status().code(), StatusCode::kNotFound);
  const CacheWorkerStats s = cw.stats();
  EXPECT_EQ(s.spill_lost_slots, 1);
  // Conservation holds: the lost slot was never read, so its bytes land
  // in evicted_unconsumed — once the surviving slot is removed too, all
  // written bytes are accounted for.
  EXPECT_GE(s.bytes_evicted_unconsumed, 40);
  cw.Clear();
  const CacheWorkerStats end = cw.stats();
  EXPECT_EQ(end.bytes_written,
            end.bytes_consumed + end.bytes_evicted_unconsumed);
}

TEST(ShufflePressureTest, TransientSpillWriteFaultsRetryInPlace) {
  FaultSchedule fs;
  fs.seed = 23;
  fs.spill_write_fail_p = 1.0;
  fs.spill_write_fails_per_victim = 1;  // first attempt fails, retry lands
  fs.max_spill_write_faults = 1 << 10;
  FaultInjector injector(fs);
  CacheWorker cw(TinyWorker("swift_pressure_transient_write"));
  cw.set_fault_injector(&injector);

  const std::string a(40, 'a'), b(40, 'b');
  ASSERT_TRUE(cw.Put(Key(0, 0), a, 0).ok());
  ASSERT_TRUE(cw.Put(Key(1, 0), b, 0).ok());  // spill write fails once
  const CacheWorkerStats s = cw.stats();
  EXPECT_GE(s.spilled_slots, 1);
  EXPECT_GE(s.spill_io_errors, 1);
  EXPECT_GE(s.spill_io_retries, 1);
  EXPECT_EQ(cw.Peek(Key(0, 0))->view(), a);  // CRC-verified reload
  EXPECT_GE(injector.stats().spill_write_faults, 1);
}

TEST(ShufflePressureTest, CorruptSpillFileFailsCrcAndDropsSlot) {
  CacheWorker cw(TinyWorker("swift_pressure_crc"));
  const std::string a(40, 'a');
  ASSERT_TRUE(cw.Put(Key(0, 0), a, 0).ok());
  ASSERT_TRUE(cw.Put(Key(1, 0), std::string(40, 'b'), 0).ok());  // spills a
  ASSERT_GE(cw.stats().spilled_slots, 1);
  // Rot every spill file on disk (flip one payload bit).
  int flipped = 0;
  for (const auto& e : std::filesystem::directory_iterator(
           cw.options().spill_dir)) {
    std::fstream f(e.path(), std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10);
    f.put('x');
    ++flipped;
  }
  ASSERT_GE(flipped, 1);
  auto r = cw.Peek(Key(0, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("CRC"), std::string::npos)
      << r.status().ToString();
  EXPECT_FALSE(cw.Contains(Key(0, 0)));
  EXPECT_EQ(cw.stats().spill_lost_slots, 1);
}

TEST(ShufflePressureTest, InjectedDiskFullDegradesToBackpressure) {
  FaultSchedule fs;
  fs.seed = 24;
  fs.spill_disk_full_after_bytes = 0;  // the spill dir is born full
  FaultInjector injector(fs);
  CacheWorker cw(TinyWorker("swift_pressure_diskfull"));
  cw.set_fault_injector(&injector);

  ASSERT_TRUE(cw.Put(Key(0, 0), std::string(40, 'a'), 0).ok());
  // The next put needs a spill, the disk refuses, the put backpressures
  // (refuse-new-puts degradation) — and the forced path still works.
  Status st = cw.Put(Key(1, 0), std::string(40, 'b'), 0);
  EXPECT_TRUE(st.IsBackpressure()) << st.ToString();
  EXPECT_GE(injector.stats().disk_full_faults, 1);
  ASSERT_TRUE(cw.Put(Key(1, 0), std::string(40, 'b'), 0, /*force=*/true).ok());
  EXPECT_EQ(cw.Peek(Key(0, 0))->view(), std::string(40, 'a'));
  EXPECT_EQ(cw.Peek(Key(1, 0))->view(), std::string(40, 'b'));
}

// Runtime-level: injected spill-read faults (some permanent) under a
// budget tiny enough that most shuffle reads reload from disk. Transient
// faults retry in place; permanent losses drop the slot and recovery
// re-runs the producer — results must stay byte-identical throughout.
TEST(ShufflePressureTest, RuntimeByteIdenticalUnderSpillFaults) {
  const std::vector<int> queries = RunnableTpchQueries();
  ASSERT_FALSE(queries.empty());

  auto canonical = [](const Batch& b) {
    std::vector<std::string> rows;
    rows.reserve(b.rows.size());
    for (const Row& r : b.rows) {
      std::string s;
      for (const Value& v : r) {
        s += v.ToString();
        s += '|';
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  std::map<int, std::vector<std::string>> want;
  {
    LocalRuntime rt{LocalRuntimeConfig{}};
    TpchConfig tpch;
    tpch.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());
    for (int q : queries) {
      auto sql = TpchQuerySql(q);
      ASSERT_TRUE(sql.ok());
      auto got = rt.ExecuteSql(*sql);
      ASSERT_TRUE(got.ok());
      want[q] = canonical(*got);
    }
  }

  FaultSchedule fs;
  fs.seed = 25;
  fs.spill_read_fail_p = 0.6;
  fs.spill_read_fails_per_victim = 1 << 10;  // every victim is permanent
  fs.max_spill_read_faults = 8;  // ... until the global cap converges it
  LocalRuntimeConfig cfg;
  cfg.force_shuffle_kind = ShuffleKind::kRemote;
  cfg.cache_memory_per_worker = 2 << 10;  // nearly everything spills
  cfg.spill_root = TempDir("swift_pressure_runtime_spill");
  cfg.fault_schedule = fs;
  LocalRuntime rt(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());
  for (int q : queries) {
    SCOPED_TRACE("Q" + std::to_string(q));
    auto sql = TpchQuerySql(q);
    ASSERT_TRUE(sql.ok());
    auto got = rt.ExecuteSql(*sql);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(canonical(*got), want[q])
        << "results diverged under spill faults";
  }
  const CacheWorkerStats ws = rt.shuffle_service()->worker_stats();
  EXPECT_GE(ws.spilled_slots, 1) << "budget never forced a spill";
  EXPECT_GE(ws.spill_lost_slots, 1)
      << "no permanent loss escalated to recovery";
  ASSERT_NE(rt.fault_injector(), nullptr);
  EXPECT_GE(rt.fault_injector()->stats().spill_read_faults, 1)
      << "no spill fault was injected";
}

}  // namespace
}  // namespace swift
