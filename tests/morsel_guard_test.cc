// Bench regression guard (ctest label morsel_smoke): morselizing a
// pipeline must not make it slower. Each guard times best-of-N for the
// whole-slice columnar path and the morselized path over the same data
// — morsel splitting (SliceRows per morsel) and the pipeline's claim /
// merge machinery are all inside the timed region, so the guard fails
// if streaming overhead ever eats the cache-residency win. Skipped
// under sanitizers: instrumentation distorts the relative costs.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/column_batch.h"
#include "exec/morsel.h"
#include "exec/operators.h"
#include "exec/table.h"

namespace swift {
namespace {

#if defined(SWIFT_SANITIZED)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

// The morselized path may be up to this factor of the whole-slice path
// before the guard fires; everything beyond is a real regression.
constexpr double kSlack = 1.10;
constexpr int kTrials = 5;
constexpr int kRows = 64 * 1024;

template <typename Fn>
double BestSeconds(Fn&& fn) {
  double best = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::shared_ptr<Table> GuardTable(int nrows) {
  Rng rng(0x5EED);
  auto t = std::make_shared<Table>();
  t->name = "guard";
  t->schema = Schema({{"k", DataType::kInt64},
                      {"v", DataType::kFloat64},
                      {"s", DataType::kString}});
  for (int r = 0; r < nrows; ++r) {
    t->rows.push_back({Value(rng.UniformInt(0, 999)),
                       Value(rng.Uniform(0.0, 1.0)),
                       Value("s" + std::to_string(rng.UniformInt(0, 31)))});
  }
  return t;
}

ExprPtr GuardPredicate() {
  return Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                      Expr::Literal(Value(int64_t{300})));
}

std::vector<ExprPtr> GuardExprs() {
  return {Expr::Binary(BinaryOp::kAdd, Expr::Column("k"),
                       Expr::Literal(Value(int64_t{7}))),
          Expr::Binary(BinaryOp::kMul, Expr::Column("v"), Expr::Column("v"))};
}

std::vector<MorselStep> GuardSteps() {
  std::vector<MorselStep> steps;
  MorselStep f;
  f.kind = MorselStep::Kind::kFilter;
  f.predicate = GuardPredicate();
  steps.push_back(std::move(f));
  MorselStep p;
  p.kind = MorselStep::Kind::kProject;
  p.exprs = GuardExprs();
  p.names = {"k7", "v2"};
  steps.push_back(std::move(p));
  return steps;
}

std::size_t DrainCountRows(PhysicalOperator* op) {
  EXPECT_TRUE(op->Open().ok());
  std::size_t rows = 0;
  for (;;) {
    auto cb = op->NextColumnar();
    EXPECT_TRUE(cb.ok());
    if (!cb->has_value()) break;
    rows += (*cb)->num_rows();
  }
  return rows;
}

// Serial whole-slice columnar — the pre-morsel scan shape the runtime
// used: materialize the task slice (Table::TaskSlice), convert it to
// one ColumnBatch, then FilterOp + ProjectOp. Slice + conversion are
// inside the timed region; that is the cost morselization replaces.
std::size_t RunWholeSlice(const Table& table) {
  Batch slice = table.TaskSlice(0, 1);
  auto cb = ToColumnBatch(slice);
  EXPECT_TRUE(cb.ok());
  std::vector<ColumnBatch> v;
  v.push_back(*std::move(cb));
  auto op = MakeProject(
      MakeFilter(MakeColumnBatchSource(table.schema, std::move(v)),
                 GuardPredicate()),
      GuardExprs(), {"k7", "v2"});
  return DrainCountRows(op.get());
}

// Morselized scan: TableMorselSource builds <= 1K-row morsels straight
// from the table rows (per-morsel construction replaces the whole-slice
// copy + conversion) and the pipeline streams them.
std::size_t RunMorselized(const std::shared_ptr<const Table>& table,
                          ThreadPool* pool, int lanes) {
  auto op = MakeParallelMorselPipeline(
      MakeTableMorselSource(table, 0, 1, table->schema, kDefaultMorselRows),
      GuardSteps(), pool, lanes, MorselMerge::kOrdered);
  return DrainCountRows(op.get());
}

void ExpectNotSlower(const char* what, double base_s, double cand_s,
                     double slack) {
  EXPECT_LE(cand_s, base_s * slack)
      << what << ": " << cand_s * 1e3 << " ms vs baseline " << base_s * 1e3
      << " ms";
}

class MorselGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (kSanitized) {
      GTEST_SKIP() << "timing guard skipped under sanitizers";
    }
  }
};

TEST_F(MorselGuardTest, SerialMorselsNotSlowerThanWholeSlice) {
  auto table = GuardTable(kRows);
  std::size_t rows_slice = 0, rows_morsel = 0;
  const double slice_s =
      BestSeconds([&] { rows_slice = RunWholeSlice(*table); });
  const double morsel_s =
      BestSeconds([&] { rows_morsel = RunMorselized(table, nullptr, 1); });
  ASSERT_EQ(rows_morsel, rows_slice);
  ExpectNotSlower("serial morsel pipeline", slice_s, morsel_s, kSlack);
}

// A compute-heavy projection: enough arithmetic per row that the morsel
// work dwarfs the pipeline's claim/merge bookkeeping. Light pipelines
// run serial-equivalent (helpers just add lock traffic); the lanes are
// there for exactly this kind of expression-bound segment.
std::vector<MorselStep> HeavySteps() {
  std::vector<MorselStep> steps;
  MorselStep f;
  f.kind = MorselStep::Kind::kFilter;
  f.predicate = GuardPredicate();
  steps.push_back(std::move(f));
  MorselStep p;
  ExprPtr acc = Expr::Column("v");
  for (int i = 0; i < 24; ++i) {
    acc = Expr::Binary(
        BinaryOp::kAdd, Expr::Binary(BinaryOp::kMul, acc, Expr::Column("v")),
        Expr::Binary(BinaryOp::kMul, Expr::Column("k"),
                     Expr::Literal(Value(0.001 * (i + 1)))));
  }
  p.kind = MorselStep::Kind::kProject;
  p.exprs = {acc, Expr::Column("k")};
  p.names = {"acc", "k"};
  steps.push_back(std::move(p));
  return steps;
}

std::size_t RunHeavy(const std::shared_ptr<const Table>& table,
                     ThreadPool* pool, int lanes) {
  auto op = MakeParallelMorselPipeline(
      MakeTableMorselSource(table, 0, 1, table->schema, kDefaultMorselRows),
      HeavySteps(), pool, lanes, MorselMerge::kOrdered);
  return DrainCountRows(op.get());
}

TEST_F(MorselGuardTest, ParallelLanesNotSlowerThanSerialOnHeavyPipeline) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 cores: on a starved host extra lanes can "
                    "only add contention, which is not a regression signal";
  }
  auto table = GuardTable(kRows);
  ThreadPool pool(4);
  std::size_t rows_serial = 0, rows_par = 0;
  const double serial_s =
      BestSeconds([&] { rows_serial = RunHeavy(table, nullptr, 1); });
  const double par_s =
      BestSeconds([&] { rows_par = RunHeavy(table, &pool, 4); });
  ASSERT_EQ(rows_par, rows_serial);
  ExpectNotSlower("parallel morsel pipeline", serial_s, par_s, kSlack);
}

}  // namespace
}  // namespace swift
