#include "core/swift.h"

#include <gtest/gtest.h>

#include "exec/tpch.h"

namespace swift {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(cfg, system_.catalog()).ok());
  }
  SwiftSystem system_;
};

TEST_F(CoreTest, QueryReturnsRows) {
  auto r = system_.Query("select count(*) from tpch_nation");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].int64(), 25);
}

TEST_F(CoreTest, QueryWithStats) {
  auto r = system_.QueryWithStats(
      "select n_regionkey, count(*) from tpch_nation group by n_regionkey");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.num_rows(), 5u);
  EXPECT_GT(r->stats.tasks_executed, 0);
}

TEST_F(CoreTest, PlanWithoutExecuting) {
  auto plan = system_.Plan("select n_name from tpch_nation");
  ASSERT_TRUE(plan.ok());
  EXPECT_GE(plan->stages.size(), 2u);
}

TEST_F(CoreTest, ExplainShowsGraphlets) {
  auto text = system_.Explain(
      "select n_name, r_name from tpch_nation n join tpch_region r "
      "on n.n_regionkey = r.r_regionkey order by n_name");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("GraphletPlan"), std::string::npos);
  EXPECT_NE(text->find("barrier"), std::string::npos);
}

TEST_F(CoreTest, ParseErrorsSurface) {
  EXPECT_EQ(system_.Query("selectx").status().code(),
            StatusCode::kParseError);
}

TEST_F(CoreTest, FormatBatchRendersTable) {
  auto r = system_.Query(
      "select n_name from tpch_nation order by n_name limit 3");
  ASSERT_TRUE(r.ok());
  std::string text = FormatBatch(*r);
  EXPECT_NE(text.find("n_name"), std::string::npos);
  EXPECT_NE(text.find("ALGERIA"), std::string::npos);
  EXPECT_NE(text.find("|"), std::string::npos);
}

TEST_F(CoreTest, FormatBatchTruncates) {
  auto r = system_.Query("select n_name from tpch_nation");
  ASSERT_TRUE(r.ok());
  std::string text = FormatBatch(*r, 5);
  EXPECT_NE(text.find("more rows"), std::string::npos);
}

TEST_F(CoreTest, InjectFailureStillCorrect) {
  auto plan = system_.Plan("select count(*) from tpch_customer");
  ASSERT_TRUE(plan.ok());
  StageId scan = -1;
  for (const auto& [id, p] : plan->stages) {
    if (!p.scan_table.empty()) scan = id;
  }
  system_.InjectFailureOnce(TaskRef{scan, 0}, FailureKind::kProcessCrash);
  auto r = system_.Query("select count(*) from tpch_customer");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto customer = *system_.catalog()->Lookup("tpch_customer");
  EXPECT_EQ(r->rows[0][0].int64(),
            static_cast<int64_t>(customer->rows.size()));
}

}  // namespace
}  // namespace swift
