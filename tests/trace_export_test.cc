#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "exec/tpch.h"
#include "obs/json.h"
#include "obs/trace_recorder.h"
#include "runtime/local_runtime.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

// Round-trip test of the timeline export: run real queries with the
// deterministic logical tick clock, write the Chrome trace_event file,
// re-parse it with the same JSON layer, and check the structural
// invariants a trace viewer relies on — valid complete events, monotone
// positive timestamps, and the span taxonomy nesting task ⊂ wave ⊂
// graphlet per job (DESIGN.md Sec. 11).

struct Interval {
  int64_t start = 0;
  int64_t end = 0;
  bool Contains(const Interval& inner) const {
    return start <= inner.start && inner.end <= end;
  }
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TraceExport, ChromeTraceRoundTripsAndNests) {
  obs::TraceRecorder tracer;  // nullptr clock -> logical ticks
  LocalRuntimeConfig cfg;
  cfg.tracer = &tracer;
  LocalRuntime rt(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());
  for (int q : {1, 9}) {
    auto sql = TpchQuerySql(q);
    ASSERT_TRUE(sql.ok());
    ASSERT_TRUE(rt.ExecuteSql(*sql).ok());
  }

  const std::string path = testing::TempDir() + "/swift_trace_test.json";
  ASSERT_TRUE(tracer.ExportChromeTrace(path).ok());

  Result<obs::JsonValue> parsed = obs::ParseJson(ReadWholeFile(path));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("displayTimeUnit").AsString(), "ms");
  const obs::JsonValue& events = parsed->Get("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GT(events.size(), 0u);

  // Per job: interval lists by category, for the nesting check below.
  std::map<int64_t, std::vector<Interval>> graphlets, waves;
  std::map<int64_t, std::vector<std::pair<Interval, std::string>>> tasks;
  std::set<std::string> categories;
  for (const obs::JsonValue& e : events.items()) {
    // Chrome trace_event complete-event contract.
    ASSERT_TRUE(e.is_object());
    EXPECT_TRUE(e.Get("name").is_string());
    EXPECT_TRUE(e.Get("cat").is_string());
    EXPECT_EQ(e.Get("ph").AsString(), "X");
    ASSERT_TRUE(e.Get("ts").is_number());
    ASSERT_TRUE(e.Get("dur").is_number());
    EXPECT_TRUE(e.Get("pid").is_number());
    EXPECT_TRUE(e.Get("tid").is_number());
    ASSERT_TRUE(e.Get("args").is_object());
    EXPECT_TRUE(e.Get("args").Has("attempt"));

    // Logical ticks start at 1 and only move forward.
    const int64_t ts = e.Get("ts").AsInt();
    const int64_t dur = e.Get("dur").AsInt();
    EXPECT_GE(ts, 1);
    EXPECT_GE(dur, 0);

    const std::string cat = e.Get("cat").AsString();
    categories.insert(cat);
    const int64_t job = e.Get("pid").AsInt();
    const Interval iv{ts, ts + dur};
    if (cat == "graphlet") graphlets[job].push_back(iv);
    if (cat == "wave") waves[job].push_back(iv);
    if (cat == "task") tasks[job].emplace_back(iv, e.Get("name").AsString());
  }
  EXPECT_TRUE(categories.count("graphlet"));
  EXPECT_TRUE(categories.count("wave"));
  EXPECT_TRUE(categories.count("task"));

  // Span taxonomy: every task lies inside a wave of its job, every wave
  // inside a graphlet. With the logical clock this is pure Begin/End
  // ordering, so a violation means the instrumentation points moved.
  ASSERT_FALSE(tasks.empty());
  for (const auto& [job, list] : tasks) {
    for (const auto& [iv, name] : list) {
      bool inside_wave = false;
      for (const Interval& w : waves[job]) {
        if (w.Contains(iv)) {
          inside_wave = true;
          break;
        }
      }
      EXPECT_TRUE(inside_wave) << "task span " << name << " of job " << job
                               << " outside every wave";
    }
  }
  for (const auto& [job, list] : waves) {
    for (const Interval& w : list) {
      bool inside_graphlet = false;
      for (const Interval& g : graphlets[job]) {
        if (g.Contains(w)) {
          inside_graphlet = true;
          break;
        }
      }
      EXPECT_TRUE(inside_graphlet)
          << "wave span of job " << job << " outside every graphlet";
    }
  }

  // The sibling summary export parses too and agrees on the span count.
  Result<obs::JsonValue> summary = obs::ParseJson(tracer.SummaryJson());
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(static_cast<std::size_t>(summary->Get("spans").AsInt()),
            events.size());
  EXPECT_TRUE(summary->Get("categories").Has("task"));
}

TEST(TraceExport, LogicalClockIsDeterministicAcrossRuns) {
  auto run = [] {
    obs::TraceRecorder tracer;
    obs::ScopedSpan outer(&tracer, {.name = "outer", .category = "a"});
    {
      obs::ScopedSpan inner(&tracer, {.name = "inner", .category = "b"});
    }
    return tracer.ChromeTraceJson();
  };
  EXPECT_EQ(run(), run());
}

TEST(TraceExport, EndOfUnknownIdIsIgnoredAndClearDropsOpenSpans) {
  obs::TraceRecorder tracer;
  tracer.End(12345);  // never began
  const uint64_t id = tracer.Begin({.name = "x", .category = "c"});
  tracer.Clear();
  tracer.End(id);  // span was dropped by Clear; must not reappear
  EXPECT_TRUE(tracer.Spans().empty());
}

}  // namespace
}  // namespace swift
