// Property tests over the cluster simulator: invariants that must hold
// for any workload, policy, and seed.

#include <gtest/gtest.h>

#include "baselines/baseline_configs.h"
#include "sim/cluster_sim.h"
#include "trace/production_trace.h"

namespace swift {
namespace {

struct SimCase {
  SchedulingPolicy policy;
  ShuffleMedium medium;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SimCase>& info) {
  static const char* kPolicy[] = {"graphlet", "wholejob", "perstage",
                                  "bubble"};
  static const char* kMedium[] = {"mem", "forced", "disk"};
  return std::string(kPolicy[static_cast<int>(info.param.policy)]) + "_" +
         kMedium[static_cast<int>(info.param.medium)] + "_s" +
         std::to_string(info.param.seed);
}

class SimPropertyTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimPropertyTest, InvariantsHold) {
  const SimCase& c = GetParam();
  TraceConfig tc;
  tc.num_jobs = 120;
  tc.seed = c.seed;
  tc.mean_interarrival = 0.2;
  auto jobs = GenerateProductionTrace(tc);
  FailureTraceConfig fc;
  fc.seed = c.seed + 1;
  InjectTraceFailures(fc, &jobs);

  SimConfig cfg;
  cfg.machines = 20;
  cfg.executors_per_machine = 50;
  cfg.policy = c.policy;
  cfg.medium = c.medium;
  cfg.seed = c.seed;
  ClusterSim sim(cfg);
  for (const auto& job : jobs) ASSERT_TRUE(sim.SubmitJob(job).ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const int capacity = cfg.machines * cfg.executors_per_machine;
  int completed = 0;
  for (const SimJobResult& r : report->jobs) {
    EXPECT_TRUE(r.completed || r.aborted) << r.name << " neither done "
                                          << "nor aborted";
    if (!r.completed) continue;
    ++completed;
    // Time sanity.
    EXPECT_GE(r.first_alloc_time, r.submit_time - 1e-9) << r.name;
    EXPECT_GE(r.finish_time, r.first_alloc_time) << r.name;
    EXPECT_LE(r.finish_time, report->makespan + 1e-9) << r.name;
    // Work accounting.
    EXPECT_GT(r.tasks_run, 0) << r.name;
    EXPECT_GE(r.busy_executor_seconds, 0.0) << r.name;
    EXPECT_GE(r.idle_executor_seconds, 0.0) << r.name;
    EXPECT_GE(r.mean_idle_ratio, 0.0) << r.name;
    EXPECT_LE(r.mean_idle_ratio, 1.0) << r.name;
    EXPECT_GE(r.tasks_rerun, 0) << r.name;
    // Phases recorded for every executed stage at least once.
    EXPECT_GE(r.phases.size(), 1u) << r.name;
    for (const StagePhases& p : r.phases) {
      EXPECT_GE(p.launch, 0.0);
      EXPECT_GE(p.shuffle_read, 0.0);
      EXPECT_GE(p.shuffle_write, 0.0);
      EXPECT_GE(p.process, 0.0);
    }
  }
  EXPECT_GT(completed, 0);

  // Occupancy never exceeds capacity and drains to zero.
  for (const OccupancySample& s : report->occupancy) {
    EXPECT_GE(s.running_executors, 0);
    EXPECT_LE(s.running_executors, capacity);
  }
  ASSERT_FALSE(report->occupancy.empty());
  EXPECT_EQ(report->occupancy.back().running_executors, 0);
}

TEST_P(SimPropertyTest, Deterministic) {
  const SimCase& c = GetParam();
  auto run = [&] {
    TraceConfig tc;
    tc.num_jobs = 40;
    tc.seed = c.seed;
    auto jobs = GenerateProductionTrace(tc);
    SimConfig cfg;
    cfg.machines = 10;
    cfg.executors_per_machine = 30;
    cfg.policy = c.policy;
    cfg.medium = c.medium;
    cfg.seed = c.seed;
    ClusterSim sim(cfg);
    for (const auto& job : jobs) EXPECT_TRUE(sim.SubmitJob(job).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return report->makespan;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SimPropertyTest,
    ::testing::Values(
        SimCase{SchedulingPolicy::kSwiftGraphlet, ShuffleMedium::kMemoryAdaptive, 1},
        SimCase{SchedulingPolicy::kSwiftGraphlet, ShuffleMedium::kDisk, 2},
        SimCase{SchedulingPolicy::kWholeJob, ShuffleMedium::kMemoryForcedKind, 3},
        SimCase{SchedulingPolicy::kPerStage, ShuffleMedium::kDisk, 4},
        SimCase{SchedulingPolicy::kDataSizeBubble, ShuffleMedium::kDisk, 5},
        SimCase{SchedulingPolicy::kSwiftGraphlet, ShuffleMedium::kMemoryAdaptive, 6},
        SimCase{SchedulingPolicy::kWholeJob, ShuffleMedium::kMemoryAdaptive, 7},
        SimCase{SchedulingPolicy::kDataSizeBubble, ShuffleMedium::kMemoryAdaptive, 8}),
    CaseName);

}  // namespace
}  // namespace swift
