// Bound-expression compilation tests: ordinal binding, constant folding,
// and a parity property test pitting BoundExpr::Evaluate against the
// interpreted Expr::Evaluate on random expression trees and random rows —
// results, NULL propagation, Kleene AND/OR, and error statuses must be
// identical.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/bound_expr.h"
#include "exec/expression.h"

namespace swift {
namespace {

Schema TestSchema() {
  return Schema({{"a", DataType::kInt64},
                 {"b", DataType::kFloat64},
                 {"s", DataType::kString}});
}

// ---------------------------------------------------------------------
// Ordinal binding
// ---------------------------------------------------------------------

TEST(BoundExprTest, ColumnBindsToOrdinal) {
  Schema schema = TestSchema();
  auto bound = Bind(Expr::Column("b"), schema);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  Row row = {Value(int64_t{7}), Value(2.5), Value("x")};
  auto v = (*bound)->Evaluate(row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->float64(), 2.5);
  EXPECT_EQ((*bound)->static_type(), DataType::kFloat64);
}

TEST(BoundExprTest, CaseInsensitiveAndQualifiedResolution) {
  Schema schema({{"l.l_suppkey", DataType::kInt64},
                 {"l.l_qty", DataType::kFloat64}});
  Row row = {Value(int64_t{42}), Value(3.0)};
  for (const char* name :
       {"l_suppkey", "L_SUPPKEY", "l.l_suppkey", "L.L_SUPPKEY"}) {
    auto bound = Bind(Expr::Column(name), schema);
    ASSERT_TRUE(bound.ok()) << name << ": " << bound.status().ToString();
    auto v = (*bound)->Evaluate(row);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->int64(), 42) << name;
  }
}

TEST(BoundExprTest, UnknownColumnFailsAtBind) {
  auto bound = Bind(Expr::Column("nope"), TestSchema());
  ASSERT_FALSE(bound.ok());
  EXPECT_TRUE(bound.status().IsNotFound()) << bound.status().ToString();
  // Same status the interpreter raises per row.
  Row row = {Value(int64_t{1}), Value(2.0), Value("x")};
  auto interp = Expr::Column("nope")->Evaluate(TestSchema(), row);
  EXPECT_EQ(bound.status(), interp.status());
}

TEST(BoundExprTest, AmbiguousColumnFailsAtBind) {
  Schema schema({{"t.x", DataType::kInt64}, {"u.x", DataType::kInt64}});
  auto bound = Bind(Expr::Column("x"), schema);
  ASSERT_FALSE(bound.ok());
  EXPECT_TRUE(bound.status().IsInvalidArgument()) << bound.status().ToString();
  Row row = {Value(int64_t{1}), Value(int64_t{2})};
  auto interp = Expr::Column("x")->Evaluate(schema, row);
  EXPECT_EQ(bound.status(), interp.status());
  // A qualified reference disambiguates.
  EXPECT_TRUE(Bind(Expr::Column("u.x"), schema).ok());
}

TEST(BoundExprTest, NullExprRejected) {
  EXPECT_FALSE(Bind(nullptr, TestSchema()).ok());
}

// ---------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------

TEST(BoundExprTest, LiteralArithmeticFolds) {
  auto bound = Bind(Expr::Binary(BinaryOp::kAdd, Expr::Literal(Value(int64_t{1})),
                                 Expr::Literal(Value(int64_t{2}))),
                    TestSchema());
  ASSERT_TRUE(bound.ok());
  const Value* lit = (*bound)->literal();
  ASSERT_NE(lit, nullptr) << "1 + 2 should fold to a literal";
  EXPECT_EQ(lit->int64(), 3);
  // Folded nodes evaluate without touching the row.
  auto v = (*bound)->Evaluate(Row{});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->int64(), 3);
}

TEST(BoundExprTest, ConstantFunctionFolds) {
  auto bound = Bind(Expr::Function("upper", {Expr::Literal(Value("abc"))}),
                    TestSchema());
  ASSERT_TRUE(bound.ok());
  const Value* lit = (*bound)->literal();
  ASSERT_NE(lit, nullptr);
  EXPECT_EQ(lit->str(), "ABC");
}

TEST(BoundExprTest, ConstantErrorPreservedUntilEval) {
  // 1/0 must bind (zero-row inputs never evaluate it) but must raise the
  // interpreter's exact division error when evaluated.
  auto bound = Bind(Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value(int64_t{1})),
                                 Expr::Literal(Value(int64_t{0}))),
                    TestSchema());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ((*bound)->literal(), nullptr);
  auto v = (*bound)->Evaluate(Row{});
  ASSERT_FALSE(v.ok());
  auto interp = Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value(int64_t{1})),
                             Expr::Literal(Value(int64_t{0})))
                    ->Evaluate(TestSchema(), Row{});
  EXPECT_EQ(v.status(), interp.status());
}

TEST(BoundExprTest, ShortCircuitFoldSkipsDeadBranch) {
  // The interpreter never evaluates the rhs of `false AND x`, so binding
  // must not fail on it either — even when x is an unknown column or a
  // constant error.
  auto dead_col = Expr::Binary(BinaryOp::kAnd, Expr::Literal(Value(int64_t{0})),
                               Expr::Column("no_such_column"));
  auto bound = Bind(dead_col, TestSchema());
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  const Value* lit = (*bound)->literal();
  ASSERT_NE(lit, nullptr);
  EXPECT_EQ(lit->int64(), 0);

  auto dead_err = Expr::Binary(
      BinaryOp::kOr, Expr::Literal(Value(int64_t{1})),
      Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value(int64_t{1})),
                   Expr::Literal(Value(int64_t{0}))));
  auto bound_or = Bind(dead_err, TestSchema());
  ASSERT_TRUE(bound_or.ok()) << bound_or.status().ToString();
  ASSERT_NE((*bound_or)->literal(), nullptr);
  EXPECT_EQ((*bound_or)->literal()->int64(), 1);
}

// ---------------------------------------------------------------------
// Kleene logic and NULL propagation (explicit truth tables)
// ---------------------------------------------------------------------

Value Tri(int t) {
  if (t < 0) return Value::Null();
  return Value(static_cast<int64_t>(t));
}

TEST(BoundExprTest, KleeneAndOrTruthTable) {
  Schema schema = TestSchema();
  Row row = {Value(int64_t{0}), Value(0.0), Value("")};
  for (int l = -1; l <= 1; ++l) {
    for (int r = -1; r <= 1; ++r) {
      for (BinaryOp op : {BinaryOp::kAnd, BinaryOp::kOr}) {
        auto e = Expr::Binary(op, Expr::Literal(Tri(l)), Expr::Literal(Tri(r)));
        auto interp = e->Evaluate(schema, row);
        auto bound = Bind(e, schema);
        ASSERT_TRUE(bound.ok());
        auto v = (*bound)->Evaluate(row);
        ASSERT_TRUE(interp.ok());
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(v->type(), interp->type()) << "l=" << l << " r=" << r;
        EXPECT_EQ(v->Compare(*interp), 0) << "l=" << l << " r=" << r;
      }
    }
  }
}

TEST(BoundExprTest, NullPropagatesThroughArithmeticAndComparison) {
  Schema schema = TestSchema();
  Row row = {Value::Null(), Value(1.5), Value("x")};
  for (BinaryOp op : {BinaryOp::kAdd, BinaryOp::kMul, BinaryOp::kLt,
                      BinaryOp::kEq, BinaryOp::kLike}) {
    auto e = Expr::Binary(op, Expr::Column("a"), Expr::Column("s"));
    auto bound = Bind(e, schema);
    ASSERT_TRUE(bound.ok());
    auto v = (*bound)->Evaluate(row);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_TRUE(v->is_null());
  }
}

TEST(BoundExprTest, TypeErrorsMatchInterpreter) {
  Schema schema = TestSchema();
  Row row = {Value(int64_t{1}), Value(2.0), Value("abc")};
  // string + int, string < int after promotion failure, LIKE on numbers.
  std::vector<ExprPtr> bad = {
      Expr::Binary(BinaryOp::kAdd, Expr::Column("s"), Expr::Column("a")),
      Expr::Binary(BinaryOp::kLike, Expr::Column("a"), Expr::Column("b")),
      Expr::Function("abs", {Expr::Column("s")}),
      Expr::Function("substr", {Expr::Column("s"), Expr::Column("s"),
                                Expr::Column("s")}),
  };
  for (const auto& e : bad) {
    auto interp = e->Evaluate(schema, row);
    ASSERT_FALSE(interp.ok()) << e->ToString();
    EXPECT_TRUE(interp.status().IsApplication()) << interp.status().ToString();
    auto bound = Bind(e, schema);
    ASSERT_TRUE(bound.ok()) << e->ToString();
    auto v = (*bound)->Evaluate(row);
    ASSERT_FALSE(v.ok()) << e->ToString();
    EXPECT_EQ(v.status(), interp.status()) << e->ToString();
  }
}

// ---------------------------------------------------------------------
// Batch evaluation and predicate semantics
// ---------------------------------------------------------------------

TEST(BoundExprTest, EvaluateColumnMatchesPerRow) {
  Schema schema = TestSchema();
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i)), Value(i * 0.5),
                    Value(std::string(1, static_cast<char>('a' + i)))});
  }
  auto e = Expr::Binary(BinaryOp::kMul, Expr::Column("b"),
                        Expr::Literal(Value(2.0)));
  auto bound = Bind(e, schema);
  ASSERT_TRUE(bound.ok());
  std::vector<Value> out;
  ASSERT_TRUE((*bound)->EvaluateColumn(rows, &out).ok());
  ASSERT_EQ(out.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto v = (*bound)->Evaluate(rows[i]);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(out[i].Compare(*v), 0);
  }
  // Reuse keeps the buffer usable and resized.
  ASSERT_TRUE((*bound)->EvaluateColumn(rows, &out).ok());
  EXPECT_EQ(out.size(), rows.size());
}

TEST(BoundExprTest, BoundPredicateMatchesInterpretedPredicate) {
  Schema schema = TestSchema();
  std::vector<Value> cases = {Value::Null(),  Value(int64_t{0}),
                              Value(int64_t{5}), Value(0.0), Value(2.5),
                              Value(""),      Value("yes")};
  for (const Value& v : cases) {
    auto e = Expr::Literal(v);
    auto bound = Bind(e, schema);
    ASSERT_TRUE(bound.ok());
    auto want = EvaluatePredicate(*e, schema, Row{});
    auto got = EvaluateBoundPredicate(**bound, Row{});
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want) << v.ToString();
  }
}

TEST(BoundExprTest, EvalBoundKeysReusesStorage) {
  Schema schema = TestSchema();
  auto keys = BindAll({Expr::Column("a"), Expr::Column("s")}, schema);
  ASSERT_TRUE(keys.ok());
  Row key;
  Row row1 = {Value(int64_t{1}), Value(0.5), Value("p")};
  Row row2 = {Value(int64_t{2}), Value(1.5), Value("q")};
  ASSERT_TRUE(EvalBoundKeys(*keys, row1, &key).ok());
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].int64(), 1);
  EXPECT_EQ(key[1].str(), "p");
  ASSERT_TRUE(EvalBoundKeys(*keys, row2, &key).ok());
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].int64(), 2);
  EXPECT_EQ(key[1].str(), "q");
}

// ---------------------------------------------------------------------
// Parity property test: random trees x random rows
// ---------------------------------------------------------------------

ExprPtr RandomLeaf(Rng* rng) {
  switch (rng->UniformInt(0, 6)) {
    case 0:
      return Expr::Column("a");
    case 1:
      return Expr::Column("b");
    case 2:
      return Expr::Column("s");
    case 3:
      return Expr::Literal(Value::Null());
    case 4:
      return Expr::Literal(Value(rng->UniformInt(-3, 3)));
    case 5:
      return Expr::Literal(Value(rng->Uniform(-4.0, 4.0)));
    default: {
      static const char* kStrings[] = {"", "a", "ab", "%a%", "a_"};
      return Expr::Literal(Value(kStrings[rng->UniformInt(0, 4)]));
    }
  }
}

ExprPtr RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->Bernoulli(0.25)) return RandomLeaf(rng);
  switch (rng->UniformInt(0, 3)) {
    case 0: {  // binary: every op including AND/OR/LIKE
      auto op = static_cast<BinaryOp>(rng->UniformInt(
          static_cast<int64_t>(BinaryOp::kAdd),
          static_cast<int64_t>(BinaryOp::kLike)));
      return Expr::Binary(op, RandomExpr(rng, depth - 1),
                          RandomExpr(rng, depth - 1));
    }
    case 1: {  // unary
      auto op = rng->Bernoulli(0.5) ? UnaryOp::kNot : UnaryOp::kNeg;
      return Expr::Unary(op, RandomExpr(rng, depth - 1));
    }
    default: {  // function
      switch (rng->UniformInt(0, 5)) {
        case 0:
          return Expr::Function("is_null", {RandomExpr(rng, depth - 1)});
        case 1: {
          std::vector<ExprPtr> args;
          const int n = static_cast<int>(rng->UniformInt(1, 3));
          for (int i = 0; i < n; ++i) args.push_back(RandomExpr(rng, depth - 1));
          return Expr::Function("coalesce", std::move(args));
        }
        case 2:
          return Expr::Function("substr",
                                {RandomExpr(rng, depth - 1),
                                 Expr::Literal(Value(rng->UniformInt(-1, 3))),
                                 Expr::Literal(Value(rng->UniformInt(0, 4)))});
        case 3:
          return Expr::Function("lower", {RandomExpr(rng, depth - 1)});
        case 4:
          return Expr::Function("upper", {RandomExpr(rng, depth - 1)});
        default:
          return Expr::Function("abs", {RandomExpr(rng, depth - 1)});
      }
    }
  }
}

// Rows deliberately ignore the declared column types: the interpreter is
// dynamically typed, and mismatched runtime values force the bound
// evaluator's typed fast paths through their generic fallbacks.
Value RandomValue(Rng* rng) {
  switch (rng->UniformInt(0, 3)) {
    case 0:
      return Value::Null();
    case 1:
      return Value(rng->UniformInt(-3, 3));
    case 2:
      return Value(rng->Uniform(-4.0, 4.0));
    default: {
      static const char* kStrings[] = {"", "a", "ab", "ABC", "%a%"};
      return Value(kStrings[rng->UniformInt(0, 4)]);
    }
  }
}

Row RandomRow(Rng* rng) {
  Row row;
  for (int c = 0; c < 3; ++c) row.push_back(RandomValue(rng));
  return row;
}

class BoundExprParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundExprParityTest, BoundMatchesInterpreted) {
  Rng rng(GetParam());
  Schema schema = TestSchema();
  for (int tree = 0; tree < 40; ++tree) {
    ExprPtr e = RandomExpr(&rng, 4);
    auto bound = Bind(e, schema);
    // The generator only references existing columns, so binding cannot
    // fail on resolution; any other bind error would be a parity bug.
    ASSERT_TRUE(bound.ok()) << e->ToString() << "\n"
                            << bound.status().ToString();
    std::vector<Row> rows;
    for (int r = 0; r < 25; ++r) rows.push_back(RandomRow(&rng));
    Status first_error = Status::OK();
    for (const Row& row : rows) {
      auto interp = e->Evaluate(schema, row);
      auto v = (*bound)->Evaluate(row);
      ASSERT_EQ(v.ok(), interp.ok())
          << e->ToString() << "\ninterp: " << interp.status().ToString()
          << "\nbound:  " << v.status().ToString();
      if (!interp.ok()) {
        EXPECT_EQ(v.status(), interp.status()) << e->ToString();
        if (first_error.ok()) first_error = interp.status();
        continue;
      }
      EXPECT_EQ(v->type(), interp->type()) << e->ToString();
      EXPECT_EQ(v->Compare(*interp), 0)
          << e->ToString() << "\ninterp: " << interp->ToString()
          << "\nbound:  " << v->ToString();

      // Predicate wrappers agree as well.
      auto pi = EvaluatePredicate(*e, schema, row);
      auto pb = EvaluateBoundPredicate(**bound, row);
      ASSERT_EQ(pb.ok(), pi.ok()) << e->ToString();
      if (pi.ok()) {
        EXPECT_EQ(*pb, *pi) << e->ToString();
      }
    }
    // Batch evaluation: succeeds iff every row succeeded, and surfaces
    // the first row error otherwise.
    std::vector<Value> col;
    Status st = (*bound)->EvaluateColumn(rows, &col);
    if (first_error.ok()) {
      ASSERT_TRUE(st.ok()) << e->ToString() << "\n" << st.ToString();
      ASSERT_EQ(col.size(), rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        auto interp = e->Evaluate(schema, rows[i]);
        EXPECT_EQ(col[i].Compare(*interp), 0) << e->ToString();
      }
    } else {
      EXPECT_EQ(st, first_error) << e->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundExprParityTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace swift
