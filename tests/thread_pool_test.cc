#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace swift {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { ++count; }));
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      int now = ++in_flight;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --in_flight;
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace swift
