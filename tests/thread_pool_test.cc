#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/wait_group.h"

namespace swift {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&count] { ++count; }));
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      int now = ++in_flight;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --in_flight;
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2);
}

TEST(WaitGroupTest, WaitsForExactlyItsOwnTasks) {
  ThreadPool pool(4);
  // A long-running background task the wave must NOT wait on.
  std::atomic<bool> release{false};
  std::atomic<bool> background_done{false};
  pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    background_done = true;
  });

  WaitGroup wg(8);
  std::atomic<int> wave_done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      ++wave_done;
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(wave_done.load(), 8);
  // Returned while the unrelated task was still running — the old
  // pool.Wait() approach would have blocked on it.
  EXPECT_FALSE(background_done.load());
  release = true;
  pool.Wait();
  EXPECT_TRUE(background_done.load());
}

TEST(WaitGroupTest, AddThenDone) {
  WaitGroup wg;
  wg.Add(2);
  wg.Done();
  wg.Done();
  wg.Wait();  // must not block
}

TEST(WaitGroupTest, ZeroCountWaitReturnsImmediately) {
  WaitGroup wg(0);
  wg.Wait();
}

}  // namespace
}  // namespace swift
