#include "exec/schema.h"

#include <gtest/gtest.h>

namespace swift {
namespace {

Schema TwoTableSchema() {
  return Schema({{"l.l_suppkey", DataType::kInt64},
                 {"l.l_price", DataType::kFloat64},
                 {"s.s_suppkey", DataType::kInt64},
                 {"s.s_name", DataType::kString}});
}

TEST(SchemaTest, ExactLookup) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  auto idx = s.IndexOf("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  Schema s({{"O_OrderKey", DataType::kInt64}});
  EXPECT_TRUE(s.IndexOf("o_orderkey").ok());
  EXPECT_TRUE(s.HasField("O_ORDERKEY"));
}

TEST(SchemaTest, MixedCaseSuffixAndQualifiedLookup) {
  // Exercises both IndexOf paths: the allocation-free all-lowercase fast
  // path and the lowercasing slow path, for exact and suffix matches.
  Schema s({{"L.L_SuppKey", DataType::kInt64}});
  for (const char* name :
       {"l.l_suppkey", "L.L_SUPPKEY", "l_suppkey", "L_SuppKey"}) {
    auto idx = s.IndexOf(name);
    ASSERT_TRUE(idx.ok()) << name;
    EXPECT_EQ(*idx, 0u) << name;
  }
}

TEST(SchemaTest, UnknownNameIsNotFound) {
  Schema s({{"a", DataType::kInt64}});
  EXPECT_EQ(s.IndexOf("zzz").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, UnqualifiedMatchesQualifiedSuffix) {
  Schema s = TwoTableSchema();
  auto idx = s.IndexOf("s_name");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 3u);
  auto p = s.IndexOf("l_price");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 1u);
}

TEST(SchemaTest, QualifiedLookupStillExact) {
  Schema s = TwoTableSchema();
  auto idx = s.IndexOf("l.l_suppkey");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0u);
}

TEST(SchemaTest, DuplicateNameIsAmbiguous) {
  Schema s({{"k", DataType::kInt64}, {"k", DataType::kInt64}});
  EXPECT_EQ(s.IndexOf("k").status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, SuffixAmbiguityDetected) {
  Schema s({{"a.key", DataType::kInt64}, {"b.key", DataType::kInt64}});
  EXPECT_EQ(s.IndexOf("key").status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"y", DataType::kString}});
  Schema c = a.Concat(b);
  ASSERT_EQ(c.num_fields(), 2u);
  EXPECT_EQ(c.field(0).name, "x");
  EXPECT_EQ(c.field(1).name, "y");
}

TEST(SchemaTest, ToStringListsFields) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kFloat64}});
  EXPECT_EQ(s.ToString(), "(a:int64, b:float64)");
}

TEST(SchemaTest, EqualityIsStructural) {
  Schema a({{"x", DataType::kInt64}});
  Schema b({{"x", DataType::kInt64}});
  Schema c({{"x", DataType::kString}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace swift
