// Bench regression guard (ctest label vec_smoke): the vectorized
// kernels must never be slower than their row-at-a-time twins. Each
// guard times best-of-N for both paths on the same data and fails if
// the columnar kernel loses (with a small tolerance for timer noise).
// Skipped under sanitizers — instrumentation overhead distorts the
// relative cost of the two paths.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/column_batch.h"
#include "exec/operators.h"
#include "exec/serde.h"

namespace swift {
namespace {

#if defined(SWIFT_SANITIZED)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

// The columnar path may be up to this factor of the row path before the
// guard fires; everything beyond is a real regression, not noise.
constexpr double kSlack = 1.10;
constexpr int kTrials = 5;

template <typename Fn>
double BestSeconds(Fn&& fn) {
  double best = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

Batch GuardBatch(int nrows) {
  Rng rng(0x5EED);
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64},
                     {"v", DataType::kFloat64},
                     {"s", DataType::kString}});
  for (int r = 0; r < nrows; ++r) {
    b.rows.push_back({Value(rng.UniformInt(0, 999)),
                      Value(rng.Uniform(0.0, 1.0)),
                      Value("s" + std::to_string(rng.UniformInt(0, 31)))});
  }
  return b;
}

OperatorPtr RowSrc(const Batch& b) {
  std::vector<Batch> v;
  v.push_back(b);
  return MakeBatchSource(b.schema, std::move(v));
}

OperatorPtr ColSrc(const ColumnBatch& cb) {
  std::vector<ColumnBatch> v;
  v.push_back(cb);
  return MakeColumnBatchSource(cb.schema, std::move(v));
}

void ExpectNotSlower(const char* what, double row_s, double col_s) {
  EXPECT_LE(col_s, row_s * kSlack)
      << what << ": columnar " << col_s * 1e3 << " ms vs row "
      << row_s * 1e3 << " ms";
}

class ColumnarGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (kSanitized) {
      GTEST_SKIP() << "timing guard skipped under sanitizers";
    }
  }
};

TEST_F(ColumnarGuardTest, FilterNotSlowerThanRowTwin) {
  const Batch b = GuardBatch(200000);
  const ColumnBatch cb = *ToColumnBatch(b);
  auto pred = Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                           Expr::Literal(Value(int64_t{500})));
  std::size_t rows_row = 0, rows_col = 0;
  const double row_s = BestSeconds([&] {
    auto op = MakeFilter(RowSrc(b), pred);
    rows_row = CollectAll(op.get())->num_rows();
  });
  const double col_s = BestSeconds([&] {
    auto op = MakeFilter(ColSrc(cb), pred);
    ASSERT_TRUE(op->Open().ok());
    rows_col = 0;
    while (true) {
      auto nxt = op->NextColumnar();
      ASSERT_TRUE(nxt.ok());
      if (!nxt->has_value()) break;
      rows_col += (*nxt)->num_rows();
    }
  });
  ASSERT_EQ(rows_col, rows_row);
  ExpectNotSlower("filter", row_s, col_s);
}

TEST_F(ColumnarGuardTest, ProjectNotSlowerThanRowTwin) {
  const Batch b = GuardBatch(200000);
  const ColumnBatch cb = *ToColumnBatch(b);
  std::vector<ExprPtr> exprs = {
      Expr::Binary(BinaryOp::kAdd, Expr::Column("k"),
                   Expr::Literal(Value(int64_t{1}))),
      Expr::Binary(BinaryOp::kMul, Expr::Column("v"), Expr::Column("v"))};
  std::vector<std::string> names = {"k1", "v2"};
  const double row_s = BestSeconds([&] {
    auto op = MakeProject(RowSrc(b), exprs, names);
    ASSERT_TRUE(CollectAll(op.get()).ok());
  });
  const double col_s = BestSeconds([&] {
    auto op = MakeProject(ColSrc(cb), exprs, names);
    ASSERT_TRUE(op->Open().ok());
    while (true) {
      auto nxt = op->NextColumnar();
      ASSERT_TRUE(nxt.ok());
      if (!nxt->has_value()) break;
    }
  });
  ExpectNotSlower("project", row_s, col_s);
}

TEST_F(ColumnarGuardTest, HashAggregateInputNotSlowerThanRowTwin) {
  const Batch b = GuardBatch(200000);
  const ColumnBatch cb = *ToColumnBatch(b);
  std::vector<ExprPtr> groups = {Expr::Column("s")};
  std::vector<std::string> names = {"s"};
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Expr::Column("k"), "sum_k"});
  aggs.push_back({AggKind::kCount, nullptr, "cnt"});
  const double row_s = BestSeconds([&] {
    auto op = MakeHashAggregate(RowSrc(b), groups, names, aggs);
    ASSERT_TRUE(CollectAll(op.get()).ok());
  });
  const double col_s = BestSeconds([&] {
    auto op = MakeHashAggregate(ColSrc(cb), groups, names, aggs);
    ASSERT_TRUE(CollectAll(op.get()).ok());
  });
  ExpectNotSlower("hash aggregate", row_s, col_s);
}

TEST_F(ColumnarGuardTest, HashPartitionNotSlowerThanRowTwin) {
  const Batch b = GuardBatch(200000);
  const ColumnBatch cb = *ToColumnBatch(b);
  std::vector<ExprPtr> keys = {Expr::Column("k")};
  const double row_s = BestSeconds([&] {
    ASSERT_TRUE(HashPartition(b, keys, 8).ok());
  });
  const double col_s = BestSeconds([&] {
    ASSERT_TRUE(HashPartitionColumnar(cb, keys, 8).ok());
  });
  ExpectNotSlower("hash partition", row_s, col_s);
}

TEST_F(ColumnarGuardTest, ColumnarDecodeNotSlowerThanRowDecode) {
  const Batch b = GuardBatch(200000);
  const std::string bytes = SerializeBatch(b);
  const double row_s = BestSeconds([&] {
    ASSERT_TRUE(DeserializeBatch(bytes).ok());
  });
  const double col_s = BestSeconds([&] {
    ASSERT_TRUE(DeserializeColumnBatch(bytes).ok());
  });
  ExpectNotSlower("v2 decode", row_s, col_s);
}

}  // namespace
}  // namespace swift
