#include "common/string_util.h"

#include <gtest/gtest.h>

namespace swift {
namespace {

TEST(StringUtilTest, SplitBasic) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  auto parts = SplitString(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(JoinStrings({"m1", "m2", "j4"}, "->"), "m1->m2->j4");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimView("  x y \t\n"), "x y");
  EXPECT_EQ(TrimView(""), "");
  EXPECT_EQ(TrimView("   "), "");
}

TEST(StringUtilTest, ToLowerAndCaseInsensitiveEquals) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(EqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(EqualsIgnoreCase("group", "groupby"));
}

TEST(StringUtilTest, LikeMatchPercent) {
  EXPECT_TRUE(SqlLikeMatch("forest green", "%green%"));
  EXPECT_TRUE(SqlLikeMatch("green", "%green%"));
  EXPECT_FALSE(SqlLikeMatch("gren", "%green%"));
  EXPECT_TRUE(SqlLikeMatch("anything", "%"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
}

TEST(StringUtilTest, LikeMatchUnderscore) {
  EXPECT_TRUE(SqlLikeMatch("cat", "c_t"));
  EXPECT_FALSE(SqlLikeMatch("cart", "c_t"));
  EXPECT_TRUE(SqlLikeMatch("cart", "c__t"));
}

TEST(StringUtilTest, LikeMatchBacktracking) {
  EXPECT_TRUE(SqlLikeMatch("abcabcabd", "%abd"));
  EXPECT_TRUE(SqlLikeMatch("xxgreenyygreenzz", "%green%z_"));
  EXPECT_FALSE(SqlLikeMatch("abc", "abc_"));
}

TEST(StringUtilTest, LikeExactWhenNoWildcards) {
  EXPECT_TRUE(SqlLikeMatch("tpch", "tpch"));
  EXPECT_FALSE(SqlLikeMatch("tpch", "tpc"));
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatBytes(1024.0 * 1024.0 * 1.5), "1.50 MB");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("stage %d '%s'", 4, "J4"), "stage 4 'J4'");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

}  // namespace
}  // namespace swift
