// Tests for the extended SQL surface: BETWEEN, IN, IS [NOT] NULL,
// HAVING, and the NULL-aware functions is_null / coalesce.

#include <gtest/gtest.h>

#include "exec/tpch.h"
#include "runtime/local_runtime.h"
#include "sql/parser.h"

namespace swift {
namespace {

TEST(SqlExtensionParseTest, BetweenDesugarsToRangeConjunction) {
  auto stmt = ParseSelect("select * from t where a between 1 and 3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->where->ToString(), "((a >= 1) and (a <= 3))");
}

TEST(SqlExtensionParseTest, BetweenBindsTighterThanAnd) {
  auto stmt =
      ParseSelect("select * from t where a between 1 and 3 and b = 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(),
            "(((a >= 1) and (a <= 3)) and (b = 2))");
}

TEST(SqlExtensionParseTest, NotBetween) {
  auto stmt = ParseSelect("select * from t where a not between 1 and 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(), "not ((a >= 1) and (a <= 3))");
}

TEST(SqlExtensionParseTest, InDesugarsToEqualityDisjunction) {
  auto stmt = ParseSelect("select * from t where x in (1, 2, 3)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(),
            "(((x = 1) or (x = 2)) or (x = 3))");
}

TEST(SqlExtensionParseTest, NotInAndSingleElement) {
  auto stmt = ParseSelect("select * from t where x not in ('a')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(), "not (x = 'a')");
}

TEST(SqlExtensionParseTest, IsNullAndIsNotNull) {
  auto stmt = ParseSelect("select * from t where a is null and b is not null");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->ToString(),
            "(is_null(a) and not is_null(b))");
}

TEST(SqlExtensionParseTest, HavingParses) {
  auto stmt = ParseSelect(
      "select a, count(*) as n from t group by a having n > 5");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE((*stmt)->having, nullptr);
  EXPECT_EQ((*stmt)->having->ToString(), "(n > 5)");
}

TEST(SqlExtensionParseTest, EmptyInListRejected) {
  EXPECT_FALSE(ParseSelect("select * from t where x in ()").ok());
}

class SqlExtensionRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.scale_factor = 0.001;
    ASSERT_TRUE(GenerateTpch(cfg, runtime_.catalog()).ok());
    // A table with NULLs for IS NULL / coalesce tests.
    auto t = std::make_shared<Table>();
    t->name = "sparse";
    t->schema = Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
    t->rows = {{Value(int64_t{1}), Value(int64_t{10})},
               {Value(int64_t{2}), Value::Null()},
               {Value(int64_t{3}), Value(int64_t{30})},
               {Value(int64_t{4}), Value::Null()}};
    ASSERT_TRUE(runtime_.catalog()->Register(t).ok());
  }
  LocalRuntime runtime_;
};

TEST_F(SqlExtensionRuntimeTest, BetweenFiltersInclusive) {
  auto got = runtime_.ExecuteSql(
      "select n_nationkey from tpch_nation "
      "where n_nationkey between 3 and 5");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->num_rows(), 3u);
}

TEST_F(SqlExtensionRuntimeTest, InListFilters) {
  auto got = runtime_.ExecuteSql(
      "select n_name from tpch_nation where n_name in "
      "('FRANCE', 'GERMANY', 'ATLANTIS')");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->num_rows(), 2u);
}

TEST_F(SqlExtensionRuntimeTest, IsNullSelectsMissing) {
  auto got = runtime_.ExecuteSql("select k from sparse where v is null");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->num_rows(), 2u);
  auto got2 = runtime_.ExecuteSql(
      "select k from sparse where v is not null order by k");
  ASSERT_TRUE(got2.ok());
  ASSERT_EQ(got2->num_rows(), 2u);
  EXPECT_EQ(got2->rows[0][0].int64(), 1);
  EXPECT_EQ(got2->rows[1][0].int64(), 3);
}

TEST_F(SqlExtensionRuntimeTest, CoalesceReplacesNulls) {
  auto got = runtime_.ExecuteSql(
      "select k, coalesce(v, 0 - 1) as v2 from sparse order by k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->num_rows(), 4u);
  EXPECT_EQ(got->rows[0][1].int64(), 10);
  EXPECT_EQ(got->rows[1][1].int64(), -1);
  EXPECT_EQ(got->rows[3][1].int64(), -1);
}

TEST_F(SqlExtensionRuntimeTest, HavingFiltersGroups) {
  // Nations per region: region sizes are 5 each with the fixed data,
  // so pick a threshold from data: count customers per nation.
  auto got = runtime_.ExecuteSql(
      "select c_nationkey, count(*) as n from tpch_customer "
      "group by c_nationkey having n >= 5 order by n desc");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // Verify against reference.
  auto customer = *runtime_.catalog()->Lookup("tpch_customer");
  std::map<int64_t, int64_t> counts;
  for (const Row& r : customer->rows) ++counts[r[2].int64()];
  std::size_t expected = 0;
  for (const auto& [k, n] : counts) {
    if (n >= 5) ++expected;
  }
  EXPECT_EQ(got->num_rows(), expected);
  for (const Row& r : got->rows) EXPECT_GE(r[1].int64(), 5);
}

TEST_F(SqlExtensionRuntimeTest, HavingOnGroupColumnAlias) {
  auto got = runtime_.ExecuteSql(
      "select n_regionkey, count(*) as n from tpch_nation "
      "group by n_regionkey having n_regionkey > 2");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->num_rows(), 2u);  // regions 3 and 4
}

TEST_F(SqlExtensionRuntimeTest, HavingWithoutGroupByRejected) {
  auto st = runtime_.ExecuteSql(
      "select n_name from tpch_nation having n_name > 'A'").status();
  EXPECT_EQ(st.code(), StatusCode::kPlanError);
}

TEST_F(SqlExtensionRuntimeTest, HavingUnknownNameRejected) {
  auto st = runtime_.ExecuteSql(
      "select n_regionkey, count(*) as n from tpch_nation "
      "group by n_regionkey having zzz > 1").status();
  EXPECT_EQ(st.code(), StatusCode::kPlanError);
}

}  // namespace
}  // namespace swift
