#include <gtest/gtest.h>

#include "partition/partitioners.h"
#include "trace/production_trace.h"
#include "trace/terasort_job.h"
#include "trace/tpch_jobs.h"

namespace swift {
namespace {

TEST(TpchJobsTest, AllTwentyTwoQueriesBuild) {
  for (int q : TpchQueryIds()) {
    auto job = BuildTpchJob(q);
    ASSERT_TRUE(job.ok()) << "Q" << q << ": " << job.status().ToString();
    EXPECT_GE(job->dag.stages().size(), 2u) << "Q" << q;
    EXPECT_GT(job->dag.TotalTasks(), 0) << "Q" << q;
  }
  EXPECT_FALSE(BuildTpchJob(23).ok());
  EXPECT_FALSE(BuildTpchJob(0).ok());
}

TEST(TpchJobsTest, Q9MatchesFig4) {
  auto job = BuildTpchJob(9);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->dag.stages().size(), 12u);
  // Task counts from Fig. 4(a).
  std::map<std::string, int> tasks;
  for (const StageDef& s : job->dag.stages()) tasks[s.name] = s.task_count;
  EXPECT_EQ(tasks["M1"], 956);
  EXPECT_EQ(tasks["M2"], 220);
  EXPECT_EQ(tasks["M3"], 3);
  EXPECT_EQ(tasks["M5"], 403);
  EXPECT_EQ(tasks["M7"], 220);
  EXPECT_EQ(tasks["M8"], 20);
  // The shuffle-mode-aware partitioner must recover Fig. 4's 4 graphlets.
  auto plan = ShuffleModeAwarePartitioner().Partition(job->dag);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphlets.size(), 4u);
  // Graphlet memberships.
  auto find = [&](const std::string& name) {
    for (const StageDef& s : job->dag.stages()) {
      if (s.name == name) return s.id;
    }
    return StageId{-1};
  };
  EXPECT_EQ(plan->GraphletOf(find("M1")), plan->GraphletOf(find("J4")));
  EXPECT_EQ(plan->GraphletOf(find("M5")), plan->GraphletOf(find("J6")));
  EXPECT_EQ(plan->GraphletOf(find("M7")), plan->GraphletOf(find("J10")));
  EXPECT_EQ(plan->GraphletOf(find("R9")), plan->GraphletOf(find("J10")));
  EXPECT_EQ(plan->GraphletOf(find("R11")), plan->GraphletOf(find("R12")));
  EXPECT_NE(plan->GraphletOf(find("J4")), plan->GraphletOf(find("J6")));
}

TEST(TpchJobsTest, Q13MatchesFig13) {
  auto job = BuildTpchJob(13);
  ASSERT_TRUE(job.ok());
  ASSERT_EQ(job->dag.stages().size(), 6u);
  std::map<std::string, const StageDef*> by_name;
  for (const StageDef& s : job->dag.stages()) by_name[s.name] = &s;
  EXPECT_EQ(by_name.at("M1")->task_count, 498);
  EXPECT_EQ(by_name.at("M2")->task_count, 72);
  // Per-task input volumes from Fig. 13 (76 MB and 5 MB).
  EXPECT_NEAR(by_name.at("M1")->input_bytes_per_task, 76e6, 1e3);
  EXPECT_NEAR(by_name.at("M2")->input_bytes_per_task, 5e6, 1e3);
  EXPECT_EQ(by_name.at("R6")->task_count, 1);
}

TEST(TpchJobsTest, ScaleShrinksScanWork) {
  TpchJobScale small;
  small.data_tb = 0.1;
  auto big = BuildTpchJob(3);
  auto tiny = BuildTpchJob(3, small);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(tiny.ok());
  EXPECT_GT(big->dag.TotalTasks(), tiny->dag.TotalTasks());
}

TEST(TerasortJobTest, ShapeAndVolume) {
  SimJobSpec job = BuildTerasortJob(250, 250);
  ASSERT_EQ(job.dag.stages().size(), 2u);
  const StageDef& map = job.dag.stages()[0];
  const StageDef& red = job.dag.stages()[1];
  EXPECT_EQ(map.task_count, 250);
  EXPECT_EQ(red.task_count, 250);
  EXPECT_DOUBLE_EQ(map.input_bytes_per_task, 200e6);
  EXPECT_DOUBLE_EQ(red.input_bytes_per_task, 200e6);  // 250*200/250
  // Map stage has no global sort: edge is pipeline, one graphlet.
  EXPECT_EQ(job.dag.EdgeKindOf(map.id, red.id), EdgeKind::kPipeline);
  auto plan = ShuffleModeAwarePartitioner().Partition(job.dag);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphlets.size(), 1u);
}

TEST(TerasortJobTest, ShuffleEdgeSizeGrowsQuadratically) {
  SimJobSpec small = BuildTerasortJob(250, 250);
  SimJobSpec large = BuildTerasortJob(1500, 1500);
  EXPECT_EQ(small.dag.ShuffleEdgeSize(0, 1), 62500);
  EXPECT_EQ(large.dag.ShuffleEdgeSize(0, 1), 2250000);
}

TEST(ProductionTraceTest, MatchesFig8Distributions) {
  TraceConfig cfg;
  auto jobs = GenerateProductionTrace(cfg);
  ASSERT_EQ(jobs.size(), 2000u);
  int small_tasks = 0, small_stages = 0;
  int64_t max_tasks = 0;
  for (const SimJobSpec& job : jobs) {
    const int64_t tasks = job.dag.TotalTasks();
    const auto stages = static_cast<int>(job.dag.stages().size());
    if (tasks <= 80) ++small_tasks;
    if (stages <= 4) ++small_stages;
    max_tasks = std::max(max_tasks, tasks);
  }
  // Fig. 8(b): >80% of jobs have <=80 tasks and <=4 stages.
  EXPECT_GT(small_tasks / 2000.0, 0.75);
  EXPECT_GT(small_stages / 2000.0, 0.75);
  // But a heavy tail exists.
  EXPECT_GT(max_tasks, 300);
}

TEST(ProductionTraceTest, DeterministicPerSeed) {
  TraceConfig cfg;
  cfg.num_jobs = 50;
  auto a = GenerateProductionTrace(cfg);
  auto b = GenerateProductionTrace(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dag.TotalTasks(), b[i].dag.TotalTasks());
    EXPECT_DOUBLE_EQ(a[i].submit_time, b[i].submit_time);
  }
}

TEST(ProductionTraceTest, ArrivalsAreMonotone) {
  TraceConfig cfg;
  cfg.num_jobs = 100;
  auto jobs = GenerateProductionTrace(cfg);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit_time, jobs[i - 1].submit_time);
  }
  cfg.mean_interarrival = 0.0;
  for (const auto& job : GenerateProductionTrace(cfg)) {
    EXPECT_DOUBLE_EQ(job.submit_time, 0.0);
  }
}

TEST(ProductionTraceTest, AllDagsPartitionCleanly) {
  TraceConfig cfg;
  cfg.num_jobs = 300;
  auto jobs = GenerateProductionTrace(cfg);
  ShuffleModeAwarePartitioner p;
  for (const SimJobSpec& job : jobs) {
    auto plan = p.Partition(job.dag);
    ASSERT_TRUE(plan.ok()) << job.name;
    EXPECT_EQ(plan->SubmissionOrder().size(), plan->graphlets.size());
  }
}

TEST(ProductionTraceTest, FailureInjectionMatchesSecVF) {
  TraceConfig cfg;
  auto jobs = GenerateProductionTrace(cfg);
  FailureTraceConfig fcfg;
  InjectTraceFailures(fcfg, &jobs);
  int with_failures = 0;
  std::vector<double> times;
  for (const SimJobSpec& job : jobs) {
    if (!job.failures.empty()) {
      ++with_failures;
      times.push_back(job.failures[0].time);
    }
  }
  EXPECT_NEAR(with_failures / 2000.0, fcfg.failure_job_fraction, 0.05);
  // Sec. V-F: ~50% of failures within 30 s, ~90% within 200 s.
  std::sort(times.begin(), times.end());
  int under30 = 0, under200 = 0;
  for (double t : times) {
    if (t <= 30) ++under30;
    if (t <= 200) ++under200;
  }
  // Failure times are clamped into each job's lifetime, so the CDF is
  // at least as front-loaded as Sec. V-F's (~50% < 30 s, ~90% < 200 s).
  const double n = static_cast<double>(times.size());
  EXPECT_GE(under30 / n, 0.45);
  EXPECT_GE(under200 / n, 0.85);
}

}  // namespace
}  // namespace swift
