// Morsel-driven streaming suite (ctest label morsel_smoke).
//
// Pins the guarantees of DESIGN.md Sec. 14:
//  1. Morselized sources split task input into <= morsel_rows batches
//     with no row lost, duplicated, or reordered — including empty,
//     1-row, and ragged-tail inputs, and selection vectors that
//     straddle morsel boundaries.
//  2. Operators stay correct across morsel boundaries: LimitOp counts
//     logical rows, filters compose selections per morsel.
//  3. The parallel morsel pipeline is byte-identical to serial row
//     execution in ordered mode (randomized parity, real thread pool),
//     row-multiset-identical in unordered mode, and surfaces source and
//     step errors exactly where serial execution would.
//  4. The native columnar Sort / Window / MergeJoin builds agree with
//     their row-at-a-time twins (NULLs, strings, duplicates, descending
//     keys, left-outer padding) and SortOp emits a permutation
//     selection instead of gathering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/column_batch.h"
#include "exec/morsel.h"
#include "exec/operators.h"
#include "exec/table.h"

namespace swift {
namespace {

// Bit-exact Value equality (NaN == NaN, -0.0 != +0.0): morselizing a
// stream must preserve cells exactly, not just Compare-equal.
bool ValueBitEq(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kNull:
      return true;
    case DataType::kInt64:
      return a.int64() == b.int64();
    case DataType::kFloat64: {
      uint64_t ba = 0, bb = 0;
      const double da = a.float64(), db = b.float64();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case DataType::kString:
      return a.str() == b.str();
  }
  return false;
}

void ExpectRowsBitEq(const std::vector<Row>& got,
                     const std::vector<Row>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t r = 0; r < want.size(); ++r) {
    ASSERT_EQ(got[r].size(), want[r].size()) << "row " << r;
    for (std::size_t c = 0; c < want[r].size(); ++c) {
      EXPECT_TRUE(ValueBitEq(got[r][c], want[r][c]))
          << "row " << r << " col " << c;
    }
  }
}

// Drains an operator through the columnar API into rows, recording the
// logical size of every emitted morsel.
Result<std::vector<Row>> DrainColumnarRows(PhysicalOperator* op,
                                           std::vector<std::size_t>* sizes) {
  std::vector<Row> rows;
  for (;;) {
    SWIFT_ASSIGN_OR_RETURN(std::optional<ColumnBatch> cb, op->NextColumnar());
    if (!cb.has_value()) break;
    if (sizes != nullptr) sizes->push_back(cb->num_rows());
    Batch b = ToRowBatch(*cb);
    for (Row& r : b.rows) rows.push_back(std::move(r));
  }
  return rows;
}

// A stable per-row fingerprint for multiset comparison (unordered mode).
std::string RowKey(const Row& row) {
  std::string key;
  for (const Value& v : row) {
    if (v.is_null()) {
      key += "N;";
    } else if (v.is_int64()) {
      key += "i" + std::to_string(v.int64()) + ";";
    } else if (v.is_float64()) {
      uint64_t bits = 0;
      const double d = v.float64();
      std::memcpy(&bits, &d, sizeof(bits));
      key += "f" + std::to_string(bits) + ";";
    } else {
      key += "s" + v.str() + ";";
    }
  }
  return key;
}

std::shared_ptr<Table> MakeTable(int nrows) {
  auto t = std::make_shared<Table>();
  t->name = "t";
  t->schema = Schema({{"k", DataType::kInt64},
                      {"v", DataType::kFloat64},
                      {"s", DataType::kString}});
  for (int r = 0; r < nrows; ++r) {
    t->rows.push_back({Value(int64_t{r}), Value(r * 0.5),
                       Value("s" + std::to_string(r % 7))});
  }
  return t;
}

Batch RandomBatch(uint64_t seed, int nrows) {
  Rng rng(seed);
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64},
                     {"v", DataType::kFloat64},
                     {"s", DataType::kString}});
  for (int r = 0; r < nrows; ++r) {
    Row row;
    row.push_back(rng.UniformInt(0, 9) == 0 ? Value::Null()
                                            : Value(rng.UniformInt(-50, 50)));
    row.push_back(rng.UniformInt(0, 9) == 0 ? Value::Null()
                                            : Value(rng.Uniform(-1.0, 1.0)));
    row.push_back(rng.UniformInt(0, 9) == 0
                      ? Value::Null()
                      : Value("s" + std::to_string(rng.UniformInt(0, 12))));
    b.rows.push_back(std::move(row));
  }
  return b;
}

// ---- Morselized sources ---------------------------------------------

TEST(TableMorselSourceTest, SplitsSliceIntoBoundedMorsels) {
  auto table = MakeTable(10);
  for (int task = 0; task < 2; ++task) {
    auto src = MakeTableMorselSource(table, task, 2, table->schema, 4);
    ASSERT_TRUE(src->Open().ok());
    EXPECT_TRUE(src->columnar());
    std::vector<std::size_t> sizes;
    auto rows = DrainColumnarRows(src.get(), &sizes);
    ASSERT_TRUE(rows.ok());
    // 5 rows per task at morsel_rows = 4 -> morsels of 4 then 1.
    EXPECT_EQ(sizes, (std::vector<std::size_t>{4, 1}));
    ExpectRowsBitEq(*rows, table->TaskSlice(task, 2).rows);
  }
}

TEST(TableMorselSourceTest, EmptySingleRowAndOversubscribedTasks) {
  {
    auto empty = MakeTable(0);
    auto src = MakeTableMorselSource(empty, 0, 1, empty->schema, 4);
    ASSERT_TRUE(src->Open().ok());
    auto rows = DrainColumnarRows(src.get(), nullptr);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty());
  }
  {
    auto one = MakeTable(1);
    auto src = MakeTableMorselSource(one, 0, 1, one->schema, 1024);
    ASSERT_TRUE(src->Open().ok());
    std::vector<std::size_t> sizes;
    auto rows = DrainColumnarRows(src.get(), &sizes);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(sizes, (std::vector<std::size_t>{1}));
    ExpectRowsBitEq(*rows, one->rows);
  }
  {
    // More tasks than rows: the surplus tasks see empty slices.
    auto small = MakeTable(3);
    std::vector<Row> all;
    for (int task = 0; task < 8; ++task) {
      auto src = MakeTableMorselSource(small, task, 8, small->schema, 2);
      ASSERT_TRUE(src->Open().ok());
      auto rows = DrainColumnarRows(src.get(), nullptr);
      ASSERT_TRUE(rows.ok());
      for (Row& r : *rows) all.push_back(std::move(r));
    }
    ExpectRowsBitEq(all, small->rows);
  }
}

TEST(TableMorselSourceTest, RowFallbackMatchesTaskSlice) {
  auto table = MakeTable(11);
  auto src = MakeTableMorselSource(table, 0, 1, table->schema, 4);
  ASSERT_TRUE(src->Open().ok());
  std::vector<Row> rows;
  for (;;) {
    auto b = src->Next();
    ASSERT_TRUE(b.ok());
    if (!b->has_value()) break;
    EXPECT_LE((*b)->num_rows(), 4u);
    for (Row& r : (*b)->rows) rows.push_back(std::move(r));
  }
  ExpectRowsBitEq(rows, table->rows);
}

TEST(MorselSourceTest, RaggedTailsAndWholeBatchMoves) {
  // Input batches of 0, 1, 5, 4 and 9 rows at morsel_rows = 4: empty
  // batches vanish, fitting batches pass through whole, oversized ones
  // split with ragged tails — and concatenation order is untouched.
  Batch all = RandomBatch(0xA11, 19);
  std::vector<ColumnBatch> batches;
  std::size_t off = 0;
  for (std::size_t n : {0u, 1u, 5u, 4u, 9u}) {
    Batch part;
    part.schema = all.schema;
    for (std::size_t i = 0; i < n; ++i) part.rows.push_back(all.rows[off + i]);
    off += n;
    auto cb = ToColumnBatch(part);
    ASSERT_TRUE(cb.ok());
    batches.push_back(*std::move(cb));
  }
  auto src = MakeMorselSource(all.schema, std::move(batches), 4);
  ASSERT_TRUE(src->Open().ok());
  std::vector<std::size_t> sizes;
  auto rows = DrainColumnarRows(src.get(), &sizes);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 4, 1, 4, 4, 4, 1}));
  ExpectRowsBitEq(*rows, all.rows);
}

TEST(MorselSourceTest, SliceRowsGathersSelectionStraddlingMorsels) {
  // A selection picking every other physical row, sliced at a morsel
  // boundary that lands mid-selection: each slice must gather exactly
  // its logical subrange and come out dense.
  Batch b = RandomBatch(0x5E1, 12);
  auto cb = ToColumnBatch(b);
  ASSERT_TRUE(cb.ok());
  cb->selection = std::vector<uint32_t>{1, 3, 5, 7, 9, 11};
  const Batch logical = ToRowBatch(*cb);
  for (std::size_t begin : {0u, 2u, 4u, 5u}) {
    const ColumnBatch m = cb->SliceRows(begin, 4);
    EXPECT_FALSE(m.selection.has_value());
    const std::size_t want =
        std::min<std::size_t>(4, logical.rows.size() - begin);
    ASSERT_EQ(m.num_rows(), want);
    std::vector<Row> expect(logical.rows.begin() + begin,
                            logical.rows.begin() + begin + want);
    ExpectRowsBitEq(ToRowBatch(m).rows, expect);
  }
}

// ---- Operators across morsel boundaries -----------------------------

TEST(MorselBoundaryTest, LimitCountsLogicalRowsAcrossMorsels) {
  // k = 0..19 filtered to k >= 3 through 4-row morsels, LIMIT 7: the
  // first morsel reaches the limit with a selection vector (3 logical
  // rows over 4 physical), so the limit must count logical rows and
  // stop mid-stream after k = 9.
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}});
  for (int64_t r = 0; r < 20; ++r) b.rows.push_back({Value(r)});
  auto cb = ToColumnBatch(b);
  ASSERT_TRUE(cb.ok());
  std::vector<ColumnBatch> batches;
  batches.push_back(*std::move(cb));
  auto pred = Expr::Binary(BinaryOp::kGe, Expr::Column("k"),
                           Expr::Literal(Value(int64_t{3})));
  auto op = MakeLimit(
      MakeFilter(MakeMorselSource(b.schema, std::move(batches), 4), pred), 7);
  ASSERT_TRUE(op->Open().ok());
  ASSERT_TRUE(op->columnar());
  auto rows = DrainColumnarRows(op.get(), nullptr);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 7u);
  for (std::size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i][0].int64(), static_cast<int64_t>(3 + i));
  }
}

// ---- Parallel morsel pipeline ---------------------------------------

std::vector<MorselStep> FilterProjectSteps() {
  std::vector<MorselStep> steps;
  MorselStep f;
  f.kind = MorselStep::Kind::kFilter;
  f.predicate = Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                             Expr::Literal(Value(int64_t{-20})));
  steps.push_back(std::move(f));
  MorselStep p;
  p.kind = MorselStep::Kind::kProject;
  p.exprs = {Expr::Binary(BinaryOp::kAdd, Expr::Column("k"),
                          Expr::Literal(Value(int64_t{7}))),
             Expr::Binary(BinaryOp::kMul, Expr::Column("v"), Expr::Column("v")),
             Expr::Column("s")};
  p.names = {"k7", "v2", "s"};
  steps.push_back(std::move(p));
  return steps;
}

// Row-operator oracle for FilterProjectSteps over `b`.
std::vector<Row> RowOracle(const Batch& b) {
  std::vector<MorselStep> steps = FilterProjectSteps();
  std::vector<Batch> in;
  in.push_back(b);
  OperatorPtr op = MakeBatchSource(b.schema, std::move(in));
  op = MakeFilter(std::move(op), steps[0].predicate);
  op = MakeProject(std::move(op), steps[1].exprs, steps[1].names);
  auto out = CollectAll(op.get());
  EXPECT_TRUE(out.ok());
  return out->rows;
}

OperatorPtr MorselizedInput(const Batch& b, std::size_t morsel_rows) {
  auto cb = ToColumnBatch(b);
  EXPECT_TRUE(cb.ok());
  std::vector<ColumnBatch> batches;
  batches.push_back(*std::move(cb));
  return MakeMorselSource(b.schema, std::move(batches), morsel_rows);
}

TEST(ParallelMorselPipelineTest, OrderedParityAcrossSeedsAndLanes) {
  ThreadPool pool(4);
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const Batch b = RandomBatch(seed, 777);
    const std::vector<Row> want = RowOracle(b);
    for (int lanes : {1, 4}) {
      auto op = MakeParallelMorselPipeline(
          MorselizedInput(b, 13), FilterProjectSteps(),
          lanes > 1 ? &pool : nullptr, lanes, MorselMerge::kOrdered);
      ASSERT_TRUE(op->Open().ok());
      EXPECT_TRUE(op->columnar());
      auto rows = DrainColumnarRows(op.get(), nullptr);
      ASSERT_TRUE(rows.ok());
      ExpectRowsBitEq(*rows, want);
    }
  }
}

TEST(ParallelMorselPipelineTest, UnorderedMatchesRowMultiset) {
  ThreadPool pool(4);
  const Batch b = RandomBatch(0xDECAF, 1000);
  std::vector<std::string> want;
  for (const Row& r : RowOracle(b)) want.push_back(RowKey(r));
  std::sort(want.begin(), want.end());
  auto op = MakeParallelMorselPipeline(MorselizedInput(b, 17),
                                       FilterProjectSteps(), &pool, 4,
                                       MorselMerge::kUnordered);
  ASSERT_TRUE(op->Open().ok());
  auto rows = DrainColumnarRows(op.get(), nullptr);
  ASSERT_TRUE(rows.ok());
  std::vector<std::string> got;
  for (const Row& r : *rows) got.push_back(RowKey(r));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

TEST(ParallelMorselPipelineTest, FullyFilteredMorselsAreSkipped) {
  ThreadPool pool(4);
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}});
  for (int64_t r = 0; r < 64; ++r) b.rows.push_back({Value(r)});
  std::vector<MorselStep> steps;
  MorselStep f;
  f.kind = MorselStep::Kind::kFilter;
  // Only k in [24, 32) survives: most morsels filter to empty and the
  // sink must swallow them, like FilterOp never emitting empty batches.
  f.predicate = Expr::Binary(
      BinaryOp::kAnd,
      Expr::Binary(BinaryOp::kGe, Expr::Column("k"),
                   Expr::Literal(Value(int64_t{24}))),
      Expr::Binary(BinaryOp::kLt, Expr::Column("k"),
                   Expr::Literal(Value(int64_t{32}))));
  steps.push_back(std::move(f));
  auto op = MakeParallelMorselPipeline(MorselizedInput(b, 8), std::move(steps),
                                       &pool, 4, MorselMerge::kOrdered);
  ASSERT_TRUE(op->Open().ok());
  std::vector<std::size_t> sizes;
  auto rows = DrainColumnarRows(op.get(), &sizes);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{8}));
  ASSERT_EQ(rows->size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ((*rows)[i][0].int64(), static_cast<int64_t>(24 + i));
  }
}

// A columnar source that emits `good` morsels and then fails, for
// pinning where the pipeline surfaces source errors.
class FailingSource final : public PhysicalOperator {
 public:
  FailingSource(Schema schema, int good) : good_(good) {
    output_schema_ = std::move(schema);
  }
  Status Open() override { return Status::OK(); }
  bool columnar() const override { return true; }
  Result<std::optional<ColumnBatch>> NextColumnar() override {
    if (emitted_ >= good_) return Status::Internal("source failed mid-stream");
    ColumnBatch cb;
    cb.schema = output_schema_;
    cb.physical_rows = 2;
    ColumnVector col = ColumnVector::OfType(DataType::kInt64);
    col.AppendInt64(emitted_ * 2);
    col.AppendInt64(emitted_ * 2 + 1);
    cb.columns.push_back(std::move(col));
    ++emitted_;
    return std::optional<ColumnBatch>(std::move(cb));
  }
  Result<std::optional<Batch>> Next() override {
    return Status::Internal("row path unused");
  }

 private:
  int good_;
  int64_t emitted_ = 0;
};

TEST(ParallelMorselPipelineTest, SourceErrorSurfacesAfterPriorMorsels) {
  ThreadPool pool(4);
  Schema schema({{"k", DataType::kInt64}});
  std::vector<MorselStep> steps;
  MorselStep f;
  f.kind = MorselStep::Kind::kFilter;
  f.predicate = Expr::Binary(BinaryOp::kGe, Expr::Column("k"),
                             Expr::Literal(Value(int64_t{0})));
  steps.push_back(std::move(f));
  for (int lanes : {1, 4}) {
    auto op = MakeParallelMorselPipeline(
        std::make_unique<FailingSource>(schema, 3), steps,
        lanes > 1 ? &pool : nullptr, lanes, MorselMerge::kOrdered);
    ASSERT_TRUE(op->Open().ok());
    // Ordered mode must deliver all three good morsels (6 rows), then
    // the error — exactly what serial execution produces.
    std::vector<Row> rows;
    Status err = Status::OK();
    for (;;) {
      auto cb = op->NextColumnar();
      if (!cb.ok()) {
        err = cb.status();
        break;
      }
      ASSERT_TRUE(cb->has_value()) << "stream ended without the error";
      Batch b = ToRowBatch(**cb);
      for (Row& r : b.rows) rows.push_back(std::move(r));
    }
    EXPECT_FALSE(err.ok());
    EXPECT_NE(err.message().find("source failed mid-stream"),
              std::string::npos);
    ASSERT_EQ(rows.size(), 6u) << "lanes=" << lanes;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i][0].int64(), static_cast<int64_t>(i));
    }
  }
}

TEST(ParallelMorselPipelineTest, DestructionMidStreamDoesNotHang) {
  ThreadPool pool(4);
  const Batch b = RandomBatch(0xBEEF, 4096);
  auto op = MakeParallelMorselPipeline(MorselizedInput(b, 16),
                                       FilterProjectSteps(), &pool, 4,
                                       MorselMerge::kOrdered);
  ASSERT_TRUE(op->Open().ok());
  auto first = op->NextColumnar();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  op.reset();  // helpers still queued/running must exit via the stop flag
}

// ---- Native columnar Sort / Window / MergeJoin ----------------------

OperatorPtr ColSrcOf(const Batch& b) {
  auto cb = ToColumnBatch(b);
  EXPECT_TRUE(cb.ok());
  std::vector<ColumnBatch> v;
  v.push_back(*std::move(cb));
  return MakeColumnBatchSource(b.schema, std::move(v));
}

OperatorPtr RowSrcOf(const Batch& b) {
  std::vector<Batch> v;
  v.push_back(b);
  return MakeBatchSource(b.schema, std::move(v));
}

TEST(ColumnarMaterializedOpsTest, SortParityAndSelectionOutput) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    const Batch b = RandomBatch(seed, 500);
    std::vector<SortKey> keys;
    keys.push_back({Expr::Column("s"), true});
    keys.push_back({Expr::Column("k"), false});  // descending, with NULLs
    auto row_op = MakeSort(RowSrcOf(b), keys);
    auto want = CollectAll(row_op.get());
    ASSERT_TRUE(want.ok());

    auto col_op = MakeSort(ColSrcOf(b), keys);
    ASSERT_TRUE(col_op->Open().ok());
    EXPECT_TRUE(col_op->columnar());
    auto cb = col_op->NextColumnar();
    ASSERT_TRUE(cb.ok());
    ASSERT_TRUE(cb->has_value());
    // The columnar sort emits a permutation selection over the input
    // storage — zero gather until a consumer needs density.
    EXPECT_TRUE((*cb)->selection.has_value());
    ExpectRowsBitEq(ToRowBatch(**cb).rows, want->rows);
    auto end = col_op->NextColumnar();
    ASSERT_TRUE(end.ok());
    EXPECT_FALSE(end->has_value());
  }
}

TEST(ColumnarMaterializedOpsTest, WindowParityAllFuncs) {
  for (auto func :
       {WindowFunc::kRowNumber, WindowFunc::kRank, WindowFunc::kSum}) {
    const Batch b = RandomBatch(44, 400);
    std::vector<ExprPtr> part = {Expr::Column("s")};
    std::vector<SortKey> order;
    order.push_back({Expr::Column("k"), true});
    ExprPtr arg = func == WindowFunc::kSum ? Expr::Column("v") : nullptr;
    auto row_op = MakeWindow(RowSrcOf(b), part, order, func, arg, "w");
    auto want = CollectAll(row_op.get());
    ASSERT_TRUE(want.ok());

    auto col_op = MakeWindow(ColSrcOf(b), part, order, func, arg, "w");
    ASSERT_TRUE(col_op->Open().ok());
    EXPECT_TRUE(col_op->columnar());
    auto got = CollectAllColumnar(col_op.get());
    ASSERT_TRUE(got.ok());
    ExpectRowsBitEq(ToRowBatch(*got).rows, want->rows);
  }
}

Batch SortedKeyBatch(uint64_t seed, int nrows, const char* val_prefix) {
  Rng rng(seed);
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}, {"p", DataType::kString}});
  int64_t k = 0;
  for (int r = 0; r < nrows; ++r) {
    k += rng.UniformInt(0, 2);  // duplicates and gaps
    b.rows.push_back(
        {Value(k), Value(val_prefix + std::to_string(rng.UniformInt(0, 99)))});
  }
  return b;
}

TEST(ColumnarMaterializedOpsTest, MergeJoinParityInnerAndLeftOuter) {
  const Batch left = SortedKeyBatch(7, 300, "L");
  const Batch right = SortedKeyBatch(9, 250, "R");
  std::vector<ExprPtr> lk = {Expr::Column("k")};
  std::vector<ExprPtr> rk = {Expr::Column("k")};
  for (auto jt : {JoinType::kInner, JoinType::kLeftOuter}) {
    auto row_op = MakeMergeJoin(RowSrcOf(left), RowSrcOf(right), lk, rk, jt);
    auto want = CollectAll(row_op.get());
    ASSERT_TRUE(want.ok());

    auto col_op = MakeMergeJoin(ColSrcOf(left), ColSrcOf(right), lk, rk, jt);
    ASSERT_TRUE(col_op->Open().ok());
    EXPECT_TRUE(col_op->columnar());
    auto got = CollectAllColumnar(col_op.get());
    ASSERT_TRUE(got.ok());
    ExpectRowsBitEq(ToRowBatch(*got).rows, want->rows);
  }
}

TEST(ColumnarMaterializedOpsTest, MergeJoinRejectsUnsortedColumnarInput) {
  Batch unsorted;
  unsorted.schema = Schema({{"k", DataType::kInt64}});
  unsorted.rows = {{Value(int64_t{5})}, {Value(int64_t{1})}};
  Batch sorted;
  sorted.schema = Schema({{"k", DataType::kInt64}});
  sorted.rows = {{Value(int64_t{1})}, {Value(int64_t{2})}};
  std::vector<ExprPtr> lk = {Expr::Column("k")};
  std::vector<ExprPtr> rk = {Expr::Column("k")};
  auto op = MakeMergeJoin(ColSrcOf(unsorted), ColSrcOf(sorted), lk, rk);
  ASSERT_TRUE(op->Open().ok());
  auto r = op->NextColumnar();
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace swift
