// Vectorized-execution parity suite (ctest label vec_smoke).
//
// Two families of guarantees are pinned here:
//  1. Batch <-> ColumnBatch conversion is lossless for every Value shape
//     the engine can hold — all four types, NULLs, NaN and -0.0, empty
//     and multi-KB strings — including when columns degrade to kBoxed.
//  2. Every vectorized kernel agrees with its row-at-a-time twin, using
//     the row operators as oracles: filter, project, limit, hash
//     aggregate, hash join, hash partition, and the shuffle serde
//     (SerializeColumnBatch must emit the row serializer's exact bytes).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/rng.h"
#include "exec/column_batch.h"
#include "exec/operators.h"
#include "exec/serde.h"

namespace swift {
namespace {

// Bit-exact Value equality: NaN == NaN, and -0.0 != +0.0 — stricter
// than Value::Compare, which is what round-tripping must preserve.
bool ValueBitEq(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kNull:
      return true;
    case DataType::kInt64:
      return a.int64() == b.int64();
    case DataType::kFloat64: {
      uint64_t ba = 0, bb = 0;
      const double da = a.float64(), db = b.float64();
      std::memcpy(&ba, &da, sizeof(ba));
      std::memcpy(&bb, &db, sizeof(bb));
      return ba == bb;
    }
    case DataType::kString:
      return a.str() == b.str();
  }
  return false;
}

void ExpectBatchesBitEq(const Batch& got, const Batch& want) {
  ASSERT_EQ(got.schema, want.schema);
  ASSERT_EQ(got.num_rows(), want.num_rows());
  for (std::size_t r = 0; r < want.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].size(), want.rows[r].size()) << "row " << r;
    for (std::size_t c = 0; c < want.rows[r].size(); ++c) {
      EXPECT_TRUE(ValueBitEq(got.rows[r][c], want.rows[r][c]))
          << "row " << r << " col " << c;
    }
  }
}

// A uniform-width random batch. Cells usually match their field type
// (with NULLs mixed in); with `deviant`, a slice of cells carries the
// wrong type so conversion exercises the kBoxed escape hatch.
Batch RandomUniformBatch(uint64_t seed, bool deviant) {
  Rng rng(seed);
  const int ncols = static_cast<int>(rng.UniformInt(1, 5));
  std::vector<Field> fields;
  for (int c = 0; c < ncols; ++c) {
    fields.push_back(Field{"c" + std::to_string(c),
                           static_cast<DataType>(rng.UniformInt(0, 3))});
  }
  Batch b;
  b.schema = Schema(std::move(fields));
  const int nrows = static_cast<int>(rng.UniformInt(0, 300));
  for (int r = 0; r < nrows; ++r) {
    Row row;
    for (int c = 0; c < ncols; ++c) {
      DataType t = b.schema.fields()[static_cast<std::size_t>(c)].type;
      if (rng.UniformInt(0, 9) == 0) {
        row.push_back(Value::Null());
        continue;
      }
      if (deviant && rng.UniformInt(0, 19) == 0) {
        t = static_cast<DataType>(rng.UniformInt(1, 3));
      }
      switch (t) {
        case DataType::kNull:
          row.push_back(Value::Null());
          break;
        case DataType::kInt64:
          row.push_back(Value(static_cast<int64_t>(rng.Next())));
          break;
        case DataType::kFloat64:
          switch (rng.UniformInt(0, 9)) {
            case 0:
              row.push_back(Value(std::numeric_limits<double>::quiet_NaN()));
              break;
            case 1:
              row.push_back(Value(-0.0));
              break;
            default:
              row.push_back(Value(rng.Uniform(-1e9, 1e9)));
          }
          break;
        case DataType::kString: {
          // Mostly short, occasionally multi-KB.
          const std::size_t len = static_cast<std::size_t>(
              rng.UniformInt(0, 9) == 0 ? rng.UniformInt(2048, 8192)
                                        : rng.UniformInt(0, 24));
          std::string s(len, 'x');
          for (char& ch : s) ch = static_cast<char>(rng.UniformInt(0, 255));
          row.push_back(Value(std::move(s)));
          break;
        }
      }
    }
    b.rows.push_back(std::move(row));
  }
  return b;
}

OperatorPtr RowSourceOf(const Batch& b) {
  std::vector<Batch> batches;
  batches.push_back(b);
  return MakeBatchSource(b.schema, std::move(batches));
}

OperatorPtr ColSourceOf(const Batch& b) {
  Result<ColumnBatch> cb = ToColumnBatch(b);
  EXPECT_TRUE(cb.ok()) << cb.status().ToString();
  std::vector<ColumnBatch> batches;
  batches.push_back(*std::move(cb));
  return MakeColumnBatchSource(b.schema, std::move(batches));
}

Batch CollectRows(OperatorPtr op) {
  Result<Batch> r = CollectAll(op.get());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *std::move(r) : Batch{};
}

Batch CollectColumnar(OperatorPtr op) {
  Result<ColumnBatch> r = CollectAllColumnar(op.get());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? ToRowBatch(*r) : Batch{};
}

class ColumnarPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnarPropertyTest, RoundTripBitExact) {
  for (const bool deviant : {false, true}) {
    Batch b = RandomUniformBatch(GetParam(), deviant);
    Result<ColumnBatch> cb = ToColumnBatch(b);
    ASSERT_TRUE(cb.ok()) << cb.status().ToString();
    EXPECT_EQ(cb->num_rows(), b.num_rows());
    ExpectBatchesBitEq(ToRowBatch(*cb), b);
  }
}

TEST_P(ColumnarPropertyTest, SerializeColumnBatchMatchesRowSerializer) {
  for (const bool deviant : {false, true}) {
    Batch b = RandomUniformBatch(GetParam(), deviant);
    Result<ColumnBatch> cb = ToColumnBatch(b);
    ASSERT_TRUE(cb.ok()) << cb.status().ToString();
    // Byte identity is the wire-compat contract: mixed row/columnar
    // fleets must produce indistinguishable shuffle payloads.
    EXPECT_EQ(SerializeColumnBatch(*cb), SerializeBatch(b));
  }
}

TEST_P(ColumnarPropertyTest, DeserializeColumnBatchMatchesRowDecoder) {
  Batch b = RandomUniformBatch(GetParam(), /*deviant=*/true);
  const std::string bytes = SerializeBatch(b);
  Result<ColumnBatch> cb = DeserializeColumnBatch(bytes);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  Result<Batch> rows = DeserializeBatch(bytes);
  ASSERT_TRUE(rows.ok());
  ExpectBatchesBitEq(ToRowBatch(*cb), *rows);
  // And re-encoding the columnar decode reproduces the buffer.
  EXPECT_EQ(SerializeColumnBatch(*cb), bytes);
}

TEST_P(ColumnarPropertyTest, SelectionAwareSerialization) {
  Batch b = RandomUniformBatch(GetParam(), /*deviant=*/false);
  Result<ColumnBatch> cb = ToColumnBatch(b);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  // Keep every other physical row, in order.
  std::vector<uint32_t> sel;
  for (std::size_t i = 0; i < cb->physical_rows; i += 2) {
    sel.push_back(static_cast<uint32_t>(i));
  }
  cb->selection = std::move(sel);
  Batch gathered = ToRowBatch(*cb);
  EXPECT_EQ(gathered.num_rows(), cb->num_rows());
  EXPECT_EQ(SerializeColumnBatch(*cb), SerializeBatch(gathered));
  // Flatten() drops the selection without changing logical contents.
  ColumnBatch flat = *cb;
  flat.Flatten();
  EXPECT_FALSE(flat.selection.has_value());
  ExpectBatchesBitEq(ToRowBatch(flat), gathered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarPropertyTest,
                         ::testing::Range<uint64_t>(1, 33));

TEST(ColumnarEdgeTest, SpecialFloatsAndStringsRoundTrip) {
  Schema s({{"f", DataType::kFloat64}, {"s", DataType::kString}});
  Batch b;
  b.schema = s;
  b.rows.push_back({Value(std::numeric_limits<double>::quiet_NaN()),
                    Value(std::string())});
  b.rows.push_back({Value(-0.0), Value(std::string(4096, '\0'))});
  b.rows.push_back({Value(std::numeric_limits<double>::infinity()),
                    Value(std::string(64 << 10, 'q'))});
  b.rows.push_back({Value::Null(), Value::Null()});
  Result<ColumnBatch> cb = ToColumnBatch(b);
  ASSERT_TRUE(cb.ok());
  ExpectBatchesBitEq(ToRowBatch(*cb), b);
  EXPECT_EQ(SerializeColumnBatch(*cb), SerializeBatch(b));
  Result<ColumnBatch> back = DeserializeColumnBatch(SerializeBatch(b));
  ASSERT_TRUE(back.ok());
  ExpectBatchesBitEq(ToRowBatch(*back), b);
}

TEST(ColumnarEdgeTest, NearMemcpyDecodeProducesTypedColumns) {
  Schema s({{"i", DataType::kInt64}, {"f", DataType::kFloat64}});
  Batch b;
  b.schema = s;
  for (int64_t r = 0; r < 100; ++r) {
    b.rows.push_back({Value(r), Value(static_cast<double>(r) * 0.5)});
  }
  Result<ColumnBatch> cb = DeserializeColumnBatch(SerializeBatch(b));
  ASSERT_TRUE(cb.ok());
  // No nulls: decode must land in contiguous typed storage, not boxes.
  ASSERT_EQ(cb->columns.size(), 2u);
  EXPECT_EQ(cb->columns[0].rep(), ColumnRep::kInt64);
  EXPECT_EQ(cb->columns[1].rep(), ColumnRep::kFloat64);
  EXPECT_FALSE(cb->columns[0].has_nulls());
  EXPECT_EQ(cb->columns[0].Int64At(99), 99);
  EXPECT_EQ(cb->columns[1].Float64At(99), 49.5);
}

// ---- Operator parity: row operators are the oracles ------------------

Schema Wide() {
  return Schema({{"k", DataType::kInt64},
                 {"v", DataType::kFloat64},
                 {"s", DataType::kString}});
}

Batch RandomWideBatch(uint64_t seed, int nrows) {
  Rng rng(seed);
  Batch b;
  b.schema = Wide();
  for (int r = 0; r < nrows; ++r) {
    Row row;
    row.push_back(rng.UniformInt(0, 19) == 0
                      ? Value::Null()
                      : Value(rng.UniformInt(-50, 50)));
    row.push_back(rng.UniformInt(0, 19) == 0 ? Value::Null()
                                             : Value(rng.Uniform(-1.0, 1.0)));
    row.push_back(Value("s" + std::to_string(rng.UniformInt(0, 9))));
    b.rows.push_back(std::move(row));
  }
  return b;
}

class OperatorParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OperatorParityTest, FilterParity) {
  Batch b = RandomWideBatch(GetParam(), 500);
  auto pred = Expr::Binary(
      BinaryOp::kOr,
      Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                   Expr::Literal(Value(int64_t{10}))),
      Expr::Binary(BinaryOp::kLt, Expr::Column("v"),
                   Expr::Literal(Value(-0.5))));
  Batch want = CollectRows(MakeFilter(RowSourceOf(b), pred));
  OperatorPtr vec = MakeFilter(ColSourceOf(b), pred);
  EXPECT_TRUE(vec->columnar());
  ExpectBatchesBitEq(CollectColumnar(std::move(vec)), want);
}

TEST_P(OperatorParityTest, ProjectParity) {
  Batch b = RandomWideBatch(GetParam(), 500);
  std::vector<ExprPtr> exprs = {
      Expr::Binary(BinaryOp::kAdd, Expr::Column("k"),
                   Expr::Literal(Value(int64_t{7}))),
      Expr::Binary(BinaryOp::kMul, Expr::Column("v"),
                   Expr::Column("v")),
      Expr::Column("s"),
  };
  std::vector<std::string> names = {"k7", "v2", "s"};
  Batch want = CollectRows(MakeProject(RowSourceOf(b), exprs, names));
  OperatorPtr vec = MakeProject(ColSourceOf(b), exprs, names);
  EXPECT_TRUE(vec->columnar());
  ExpectBatchesBitEq(CollectColumnar(std::move(vec)), want);
}

TEST_P(OperatorParityTest, LimitUnderSelectionIsLogical) {
  // LIMIT over a filtered columnar stream must count surviving
  // (logical) rows, not physical storage rows.
  Batch b = RandomWideBatch(GetParam(), 500);
  auto pred = Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                           Expr::Literal(Value(int64_t{0})));
  Batch want =
      CollectRows(MakeLimit(MakeFilter(RowSourceOf(b), pred), 37));
  Batch got =
      CollectColumnar(MakeLimit(MakeFilter(ColSourceOf(b), pred), 37));
  ExpectBatchesBitEq(got, want);
}

TEST_P(OperatorParityTest, HashAggregateParity) {
  Batch b = RandomWideBatch(GetParam(), 700);
  std::vector<ExprPtr> groups = {Expr::Column("s")};
  std::vector<std::string> names = {"s"};
  std::vector<AggSpec> aggs;
  aggs.push_back({AggKind::kSum, Expr::Column("k"), "sum_k"});
  aggs.push_back({AggKind::kCount, nullptr, "cnt"});
  aggs.push_back({AggKind::kMin, Expr::Column("v"), "min_v"});
  aggs.push_back({AggKind::kMax, Expr::Column("k"), "max_k"});
  aggs.push_back({AggKind::kAvg, Expr::Column("v"), "avg_v"});
  Batch want = CollectRows(
      MakeHashAggregate(RowSourceOf(b), groups, names, aggs));
  // Aggregation materializes, so the root is not columnar, but a
  // columnar child routes it through the vectorized accumulation path.
  Batch got = CollectRows(
      MakeHashAggregate(ColSourceOf(b), groups, names, aggs));
  ExpectBatchesBitEq(got, want);
}

TEST_P(OperatorParityTest, HashJoinParity) {
  Batch probe = RandomWideBatch(GetParam(), 400);
  Batch build = RandomWideBatch(GetParam() ^ 0xBEEF, 80);
  for (const JoinType jt : {JoinType::kInner, JoinType::kLeftOuter}) {
    std::vector<ExprPtr> lk = {Expr::Column("k")};
    std::vector<ExprPtr> rk = {Expr::Column("k")};
    Batch want = CollectRows(MakeHashJoin(RowSourceOf(probe),
                                          RowSourceOf(build), lk, rk, jt));
    Batch got = CollectRows(MakeHashJoin(ColSourceOf(probe),
                                         ColSourceOf(build), lk, rk, jt));
    ExpectBatchesBitEq(got, want);
  }
}

TEST_P(OperatorParityTest, HashPartitionParity) {
  Batch b = RandomWideBatch(GetParam(), 600);
  std::vector<ExprPtr> keys = {Expr::Column("k"), Expr::Column("s")};
  const int nparts = 7;
  Result<std::vector<Batch>> want = HashPartition(b, keys, nparts);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  Result<ColumnBatch> cb = ToColumnBatch(b);
  ASSERT_TRUE(cb.ok());
  Result<std::vector<ColumnBatch>> got =
      HashPartitionColumnar(*cb, keys, nparts);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), want->size());
  for (int p = 0; p < nparts; ++p) {
    ExpectBatchesBitEq(ToRowBatch((*got)[static_cast<std::size_t>(p)]),
                       (*want)[static_cast<std::size_t>(p)]);
  }
}

TEST_P(OperatorParityTest, FilteredPartitionParity) {
  // Partitioning a batch that still carries a selection vector must
  // route exactly the surviving rows.
  Batch b = RandomWideBatch(GetParam(), 600);
  auto pred = Expr::Binary(BinaryOp::kGe, Expr::Column("k"),
                           Expr::Literal(Value(int64_t{0})));
  Batch wantrows = CollectRows(MakeFilter(RowSourceOf(b), pred));
  std::vector<ExprPtr> keys = {Expr::Column("k")};
  Result<std::vector<Batch>> want = HashPartition(wantrows, keys, 5);
  ASSERT_TRUE(want.ok());
  OperatorPtr vec = MakeFilter(ColSourceOf(b), pred);
  ASSERT_TRUE(vec->Open().ok());
  Result<std::optional<ColumnBatch>> filtered = vec->NextColumnar();
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  ASSERT_TRUE(filtered->has_value());
  ASSERT_TRUE((*filtered)->selection.has_value());  // no row copies made
  Result<std::vector<ColumnBatch>> got =
      HashPartitionColumnar(**filtered, keys, 5);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), want->size());
  for (std::size_t p = 0; p < want->size(); ++p) {
    ExpectBatchesBitEq(ToRowBatch((*got)[p]), (*want)[p]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorParityTest,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace swift
