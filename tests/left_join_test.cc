// Tests for LEFT OUTER JOIN: operator level (hash and merge variants),
// SQL level, and the real TPC-H Q13 against a hand-computed reference.

#include <gtest/gtest.h>

#include <map>

#include "common/string_util.h"
#include "exec/operators.h"
#include "exec/tpch.h"
#include "runtime/local_runtime.h"
#include "sql/parser.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

OperatorPtr SourceOf(Schema schema, std::vector<Row> rows) {
  Batch b;
  b.schema = schema;
  b.rows = std::move(rows);
  std::vector<Batch> batches;
  batches.push_back(std::move(b));
  return MakeBatchSource(std::move(schema), std::move(batches));
}

OperatorPtr Customers() {
  Schema s({{"ck", DataType::kInt64}, {"cname", DataType::kString}});
  return SourceOf(s, {{Value(int64_t{1}), Value("a")},
                      {Value(int64_t{2}), Value("b")},
                      {Value(int64_t{3}), Value("c")},
                      {Value::Null(), Value("n")}});
}

OperatorPtr Orders() {
  Schema s({{"ok", DataType::kInt64}, {"oc", DataType::kInt64}});
  return SourceOf(s, {{Value(int64_t{1}), Value(int64_t{10})},
                      {Value(int64_t{1}), Value(int64_t{11})},
                      {Value(int64_t{3}), Value(int64_t{30})}});
}

Batch Collect(OperatorPtr op) {
  auto r = CollectAll(op.get());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *std::move(r) : Batch{};
}

TEST(LeftJoinOperatorTest, HashLeftOuterPadsUnmatched) {
  Batch out = Collect(MakeHashJoin(Customers(), Orders(),
                                   {Expr::Column("ck")}, {Expr::Column("ok")},
                                   JoinType::kLeftOuter));
  // customer 1: 2 matches; 2: padded; 3: 1 match; NULL-key: padded.
  ASSERT_EQ(out.num_rows(), 5u);
  int padded = 0;
  for (const Row& r : out.rows) {
    if (r[2].is_null()) {
      ++padded;
      EXPECT_TRUE(r[3].is_null());
    }
  }
  EXPECT_EQ(padded, 2);
}

TEST(LeftJoinOperatorTest, MergeLeftOuterMatchesHash) {
  auto sorted_l = MakeSort(Customers(), {SortKey{Expr::Column("ck"), true}});
  auto sorted_r = MakeSort(Orders(), {SortKey{Expr::Column("ok"), true}});
  Batch merge = Collect(MakeMergeJoin(std::move(sorted_l), std::move(sorted_r),
                                      {Expr::Column("ck")},
                                      {Expr::Column("ok")},
                                      JoinType::kLeftOuter));
  Batch hash = Collect(MakeHashJoin(Customers(), Orders(),
                                    {Expr::Column("ck")}, {Expr::Column("ok")},
                                    JoinType::kLeftOuter));
  EXPECT_EQ(merge.num_rows(), hash.num_rows());
}

TEST(LeftJoinOperatorTest, MergeLeftOuterUnmatchedTail) {
  // Left rows beyond the last right key must still be emitted.
  Schema ls({{"k", DataType::kInt64}});
  Schema rs({{"k2", DataType::kInt64}});
  Batch out = Collect(MakeMergeJoin(
      SourceOf(ls, {{Value(int64_t{1})}, {Value(int64_t{5})},
                    {Value(int64_t{9})}}),
      SourceOf(rs, {{Value(int64_t{1})}}), {Expr::Column("k")},
      {Expr::Column("k2")}, JoinType::kLeftOuter));
  ASSERT_EQ(out.num_rows(), 3u);
}

TEST(LeftJoinOperatorTest, InnerSemanticsUnchangedByDefault) {
  Batch out = Collect(MakeHashJoin(Customers(), Orders(),
                                   {Expr::Column("ck")},
                                   {Expr::Column("ok")}));
  EXPECT_EQ(out.num_rows(), 3u);  // only matches
}

TEST(LeftJoinParseTest, LeftAndLeftOuterAccepted) {
  auto a = ParseSelect("select * from c left join o on c.k = o.k");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE((*a)->joins[0].left_outer);
  auto b = ParseSelect("select * from c left outer join o on c.k = o.k");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE((*b)->joins[0].left_outer);
  auto c = ParseSelect("select * from c join o on c.k = o.k");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE((*c)->joins[0].left_outer);
}

class LeftJoinRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchConfig cfg;
    cfg.scale_factor = 0.002;
    ASSERT_TRUE(GenerateTpch(cfg, runtime_.catalog()).ok());
  }
  LocalRuntime runtime_;
};

TEST_F(LeftJoinRuntimeTest, CustomersWithoutOrdersAreKept) {
  auto got = runtime_.ExecuteSql(
      "select c_custkey, count(o_orderkey) as n from tpch_customer c "
      "left join tpch_orders o on c.c_custkey = o.o_custkey "
      "group by c_custkey");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto customer = *runtime_.catalog()->Lookup("tpch_customer");
  EXPECT_EQ(got->num_rows(), customer->rows.size());
  // Reference counts.
  auto orders = *runtime_.catalog()->Lookup("tpch_orders");
  std::map<int64_t, int64_t> ref;
  for (const Row& r : orders->rows) ++ref[r[1].int64()];
  int zero_customers = 0;
  for (const Row& r : got->rows) {
    const int64_t want = ref.count(r[0].int64()) ? ref[r[0].int64()] : 0;
    EXPECT_EQ(r[1].int64(), want);
    if (want == 0) ++zero_customers;
  }
  // The generator leaves some customers orderless (custkey % 3 == 0
  // skew), so the outer join must actually pad.
  EXPECT_GT(zero_customers, 0);
}

TEST_F(LeftJoinRuntimeTest, OnResidualMustBeRightSideOnly) {
  auto st = runtime_.ExecuteSql(
      "select count(*) from tpch_customer c left join tpch_orders o "
      "on c.c_custkey = o.o_custkey and c_acctbal > 0").status();
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
}

TEST_F(LeftJoinRuntimeTest, TpchQ13MatchesReference) {
  auto sql = TpchQuerySql(13);
  ASSERT_TRUE(sql.ok());
  auto got = runtime_.ExecuteSql(*sql);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  // Reference: orders per customer, excluding '%special%requests%'
  // comments; customers with none count as 0.
  auto customer = *runtime_.catalog()->Lookup("tpch_customer");
  auto orders = *runtime_.catalog()->Lookup("tpch_orders");
  std::map<int64_t, int64_t> per_customer;
  for (const Row& r : customer->rows) per_customer[r[0].int64()] = 0;
  for (const Row& r : orders->rows) {
    if (SqlLikeMatch(r[6].str(), "%special%requests%")) continue;
    ++per_customer[r[1].int64()];
  }
  std::map<int64_t, int64_t> ref;  // c_count -> custdist
  for (const auto& [ck, n] : per_customer) ++ref[n];

  ASSERT_EQ(got->num_rows(), ref.size());
  for (const Row& r : got->rows) {
    EXPECT_EQ(r[1].int64(), ref.at(r[0].int64()))
        << "c_count=" << r[0].int64();
  }
  // Ordered by custdist desc then c_count desc.
  for (std::size_t i = 1; i < got->rows.size(); ++i) {
    const auto& p = got->rows[i - 1];
    const auto& c = got->rows[i];
    EXPECT_TRUE(p[1].int64() > c[1].int64() ||
                (p[1].int64() == c[1].int64() &&
                 p[0].int64() > c[0].int64()));
  }
}

}  // namespace
}  // namespace swift
