#include "sim/cluster_sim.h"

#include <gtest/gtest.h>

#include "baselines/baseline_configs.h"
#include "dag/dag_builder.h"
#include "sim/event_engine.h"

namespace swift {
namespace {

using OK = OperatorKind;

TEST(EventEngineTest, FiresInTimeOrder) {
  EventEngine e;
  std::vector<int> order;
  e.ScheduleAt(5.0, [&] { order.push_back(2); });
  e.ScheduleAt(1.0, [&] { order.push_back(1); });
  e.ScheduleAt(9.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(e.Run(), 9.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventEngineTest, TiesFireInInsertionOrder) {
  EventEngine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventEngineTest, CancelPreventsFiring) {
  EventEngine e;
  bool fired = false;
  auto id = e.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.Cancel(id));
  EXPECT_FALSE(e.Cancel(id));  // already cancelled
  e.Run();
  EXPECT_FALSE(fired);
}

TEST(EventEngineTest, NestedSchedulingAndRunUntil) {
  EventEngine e;
  int count = 0;
  e.ScheduleAt(1.0, [&] {
    ++count;
    e.ScheduleAfter(2.0, [&] { ++count; });   // t=3
    e.ScheduleAfter(10.0, [&] { ++count; });  // t=11, beyond horizon
  });
  EXPECT_DOUBLE_EQ(e.Run(5.0), 5.0);
  EXPECT_EQ(count, 2);
}

TEST(EventEngineTest, PastEventsClampToNow) {
  EventEngine e;
  double fired_at = -1;
  e.ScheduleAt(5.0, [&] {
    e.ScheduleAt(1.0, [&] { fired_at = e.Now(); });  // in the past
  });
  e.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(NetworkModelTest, CongestionRampsLatencyAndRetrans) {
  NetworkModel net;
  EXPECT_DOUBLE_EQ(net.ConnLatency(100), net.base_conn_latency);
  EXPECT_DOUBLE_EQ(net.ConnLatency(1e7), net.congested_conn_latency);
  const double mid = net.ConnLatency(60000);
  EXPECT_GT(mid, net.base_conn_latency);
  EXPECT_LT(mid, net.congested_conn_latency);
  EXPECT_DOUBLE_EQ(net.RetransRate(ShuffleKind::kDirect, 100),
                   net.base_retrans);
  EXPECT_DOUBLE_EQ(net.RetransRate(ShuffleKind::kDirect, 1e7),
                   net.max_retrans);
  // Cache-Worker schemes stay at the floor regardless of scale.
  EXPECT_DOUBLE_EQ(net.RetransRate(ShuffleKind::kLocal, 1e7),
                   net.base_retrans);
}

TEST(NetworkModelTest, LargeShuffleOrderingMatchesPaper) {
  // 1500x1500 tasks on 100 machines: setup time direct >> remote > local.
  NetworkModel net;
  const double direct =
      net.ConnectionSetupTime(ShuffleKind::kDirect, 1500, 1500, 100);
  const double remote =
      net.ConnectionSetupTime(ShuffleKind::kRemote, 1500, 1500, 100);
  const double local =
      net.ConnectionSetupTime(ShuffleKind::kLocal, 1500, 1500, 100);
  EXPECT_GT(direct, remote);
  EXPECT_GT(remote, local);
  // "Dozens of seconds" for hundreds of successors under congestion.
  EXPECT_GT(direct, 20.0);
}

TEST(NetworkModelTest, SmallShuffleDirectIsCheapest) {
  NetworkModel net;
  const double bytes = 1e9;
  const double direct = net.TransferTime(ShuffleKind::kDirect, bytes, 20, 20, 4) +
                        net.ConnectionSetupTime(ShuffleKind::kDirect, 20, 20, 4);
  const double local = net.TransferTime(ShuffleKind::kLocal, bytes, 20, 20, 4) +
                       net.ConnectionSetupTime(ShuffleKind::kLocal, 20, 20, 4);
  EXPECT_LT(direct, local);  // extra copies dominate at small scale
}

TEST(DiskModelTest, DiskMuchSlowerThanMemory) {
  // Calibration check: a Q9-sized shuffle (~60 GB over 100 machines)
  // should cost roughly an order of magnitude more on disk (the paper
  // reports ~14x: 137.8 s disk write vs 9.61 s in-memory).
  DiskModel disk;
  NetworkModel net;
  const double bytes = 60e9;
  const double disk_t = disk.WriteTime(bytes, 220 * 403, 100);
  const double mem_t = net.TransferTime(ShuffleKind::kRemote, bytes, 220,
                                        403, 100);
  EXPECT_GT(disk_t / mem_t, 6.0);
  EXPECT_LT(disk_t / mem_t, 40.0);
}

SimJobSpec TwoStageJob(const std::string& name, int map_tasks,
                       int reduce_tasks, double mb_per_task,
                       bool barrier = true) {
  DagBuilder b(name);
  StageDef map;
  map.name = "map";
  map.task_count = map_tasks;
  map.operators = {OK::kTableScan,
                   barrier ? OK::kMergeSort : OK::kStreamLine,
                   OK::kShuffleWrite};
  map.input_bytes_per_task = mb_per_task * 1e6;
  map.output_bytes_per_task = mb_per_task * 1e6 * 0.5;
  StageId m = b.AddStage(map);
  StageDef red;
  red.name = "reduce";
  red.task_count = reduce_tasks;
  red.operators = {OK::kShuffleRead, OK::kMergeSort, OK::kAdhocSink};
  red.input_bytes_per_task =
      mb_per_task * 1e6 * 0.5 * map_tasks / reduce_tasks;
  red.output_bytes_per_task = 0;
  StageId r = b.AddStage(red);
  b.AddEdge(m, r);
  SimJobSpec job;
  job.name = name;
  job.dag = std::move(b.Build()).ValueOrDie();
  return job;
}

TEST(ClusterSimTest, SingleJobCompletes) {
  ClusterSim sim(MakeSwiftSimConfig(10, 8));
  ASSERT_TRUE(sim.SubmitJob(TwoStageJob("j", 16, 8, 300)).ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->jobs.size(), 1u);
  const SimJobResult& r = report->jobs[0];
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.tasks_run, 24);
  EXPECT_GT(r.finish_time, 0.0);
  EXPECT_GE(r.first_alloc_time, 0.0);
  EXPECT_GT(r.busy_executor_seconds, 0.0);
  EXPECT_EQ(report->total_tasks, 24);
}

TEST(ClusterSimTest, PhasesAreRecorded) {
  ClusterSim sim(MakeSwiftSimConfig(10, 8));
  ASSERT_TRUE(sim.SubmitJob(TwoStageJob("j", 16, 8, 300)).ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  const auto& phases = report->jobs[0].phases;
  ASSERT_EQ(phases.size(), 2u);
  for (const StagePhases& p : phases) {
    EXPECT_GT(p.launch, 0.0);
    EXPECT_GT(p.process, 0.0);
  }
}

TEST(ClusterSimTest, ColdLaunchSlowerThanWarm) {
  auto run = [&](bool cold) {
    SimConfig cfg = MakeSwiftSimConfig(10, 8);
    cfg.cold_launch = cold;
    ClusterSim sim(cfg);
    EXPECT_TRUE(sim.SubmitJob(TwoStageJob("j", 16, 8, 100)).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return report->jobs[0].Latency();
  };
  EXPECT_GT(run(true), run(false) + 5.0);
}

TEST(ClusterSimTest, DiskShuffleSlowerThanMemory) {
  auto run = [&](ShuffleMedium medium) {
    SimConfig cfg = MakeSwiftSimConfig(10, 8);
    cfg.medium = medium;
    ClusterSim sim(cfg);
    EXPECT_TRUE(sim.SubmitJob(TwoStageJob("j", 32, 16, 500)).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return report->jobs[0].Latency();
  };
  EXPECT_GT(run(ShuffleMedium::kDisk),
            1.5 * run(ShuffleMedium::kMemoryAdaptive));
}

TEST(ClusterSimTest, WholeJobGangHasHigherIdleRatio) {
  // A 3-stage barrier chain: whole-job gang parks the downstream
  // executors while upstream runs (the Fig. 3 effect).
  auto build = [&] {
    DagBuilder b("chain");
    for (int s = 0; s < 3; ++s) {
      StageDef def;
      def.name = "s" + std::to_string(s);
      def.task_count = 8;
      def.operators = {s == 0 ? OK::kTableScan : OK::kShuffleRead,
                       OK::kMergeSort,
                       s == 2 ? OK::kAdhocSink : OK::kShuffleWrite};
      def.input_bytes_per_task = 400e6;
      def.output_bytes_per_task = 200e6;
      b.AddStage(def);
    }
    b.AddEdge(0, 1).AddEdge(1, 2);
    SimJobSpec job;
    job.name = "chain";
    job.dag = std::move(b.Build()).ValueOrDie();
    return job;
  };
  auto run = [&](SchedulingPolicy policy) {
    SimConfig cfg = MakeSwiftSimConfig(10, 8);
    cfg.policy = policy;
    ClusterSim sim(cfg);
    EXPECT_TRUE(sim.SubmitJob(build()).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return report->jobs[0];
  };
  const SimJobResult gang = run(SchedulingPolicy::kWholeJob);
  const SimJobResult graphlet = run(SchedulingPolicy::kSwiftGraphlet);
  EXPECT_GT(gang.mean_idle_ratio, graphlet.mean_idle_ratio + 0.05);
  EXPECT_GT(gang.idle_executor_seconds, graphlet.idle_executor_seconds);
}

TEST(ClusterSimTest, FifoHeadOfLineBlocking) {
  // A huge job ahead of a tiny one delays it (JetScope-style waiting).
  SimConfig cfg = MakeJetScopeSimConfig(4, 8);  // 32 executors
  ClusterSim sim(cfg);
  ASSERT_TRUE(sim.SubmitJob(TwoStageJob("big", 24, 8, 2000)).ok());
  SimJobSpec tiny = TwoStageJob("tiny", 2, 1, 10);
  tiny.submit_time = 0.5;
  ASSERT_TRUE(sim.SubmitJob(tiny).ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  // The tiny job can only start after the big one releases resources.
  EXPECT_GT(report->jobs[1].first_alloc_time,
            report->jobs[0].first_alloc_time + 1.0);
}

TEST(ClusterSimTest, OversizedUnitAborts) {
  SimConfig cfg = MakeJetScopeSimConfig(2, 4);  // capacity 8
  ClusterSim sim(cfg);
  ASSERT_TRUE(sim.SubmitJob(TwoStageJob("big", 64, 64, 10)).ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->jobs[0].aborted);
  // Swift graphlets of the same job fit unit-by-unit.
  ClusterSim sim2(MakeSwiftSimConfig(2, 4));
  SimJobSpec job = TwoStageJob("big", 8, 8, 10);
  ASSERT_TRUE(sim2.SubmitJob(job).ok());
  auto r2 = sim2.Run();
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->jobs[0].completed);
}

TEST(ClusterSimTest, FineGrainedRecoveryBeatsJobRestart) {
  auto run = [&](bool fine) {
    SimConfig cfg = MakeSwiftSimConfig(10, 8);
    cfg.fine_grained_recovery = fine;
    ClusterSim sim(cfg);
    SimJobSpec job = TwoStageJob("j", 16, 8, 800);
    // Fail a reduce task late in the job.
    FailureInjection f;
    f.time = 8.0;
    f.stage = 1;
    f.kind = FailureKind::kProcessCrash;
    job.failures.push_back(f);
    EXPECT_TRUE(sim.SubmitJob(job).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return report->jobs[0];
  };
  const SimJobResult fine = run(true);
  const SimJobResult restart = run(false);
  EXPECT_TRUE(fine.completed);
  EXPECT_TRUE(restart.completed);
  EXPECT_LT(fine.Latency(), restart.Latency());
  EXPECT_LT(fine.tasks_rerun, restart.tasks_rerun);
  EXPECT_GE(fine.recoveries, 1);
}

TEST(ClusterSimTest, ApplicationFailureAbortsJob) {
  ClusterSim sim(MakeSwiftSimConfig(10, 8));
  SimJobSpec job = TwoStageJob("j", 16, 8, 300);
  FailureInjection f;
  f.time = 1.0;
  f.stage = 0;
  f.kind = FailureKind::kApplicationError;
  job.failures.push_back(f);
  ASSERT_TRUE(sim.SubmitJob(job).ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->jobs[0].aborted);
  EXPECT_FALSE(report->jobs[0].completed);
}

TEST(ClusterSimTest, FailureAfterConsumersFinishedIsFree) {
  // Inject a crash into the map stage after the whole job would have
  // consumed its data: fine-grained recovery decides kNone.
  SimConfig cfg = MakeSwiftSimConfig(10, 8);
  ClusterSim base(cfg);
  SimJobSpec clean = TwoStageJob("j", 16, 8, 300, /*barrier=*/false);
  ASSERT_TRUE(base.SubmitJob(clean).ok());
  auto clean_report = base.Run();
  ASSERT_TRUE(clean_report.ok());
  const double clean_latency = clean_report->jobs[0].Latency();

  ClusterSim sim(cfg);
  SimJobSpec job = TwoStageJob("j", 16, 8, 300, /*barrier=*/false);
  FailureInjection f;
  f.time = clean_latency * 0.98;  // both stages essentially done
  f.stage = 0;
  f.kind = FailureKind::kProcessCrash;
  job.failures.push_back(f);
  ASSERT_TRUE(sim.SubmitJob(job).ok());
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->jobs[0].Latency(), clean_latency * 1.02);
}

TEST(ClusterSimTest, OccupancySeriesIsSane) {
  SimConfig cfg = MakeSwiftSimConfig(10, 8);
  ClusterSim sim(cfg);
  for (int i = 0; i < 5; ++i) {
    SimJobSpec job = TwoStageJob("j" + std::to_string(i), 8, 4, 200);
    job.submit_time = i * 0.5;
    ASSERT_TRUE(sim.SubmitJob(job).ok());
  }
  auto report = sim.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->occupancy.empty());
  int64_t peak = 0;
  for (const OccupancySample& s : report->occupancy) {
    EXPECT_GE(s.running_executors, 0);
    EXPECT_LE(s.running_executors, 80);
    peak = std::max(peak, s.running_executors);
  }
  EXPECT_GT(peak, 0);
  EXPECT_EQ(report->occupancy.back().running_executors, 0);
}

TEST(ClusterSimTest, DeterministicForSameSeed) {
  auto run = [&] {
    ClusterSim sim(MakeSparkSimConfig(10, 8));
    EXPECT_TRUE(sim.SubmitJob(TwoStageJob("j", 16, 8, 300)).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return report->jobs[0].Latency();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(ClusterSimTest, MachineFailureRemovesCapacityUntilRepair) {
  // A tiny job suffers a machine failure; a later full-cluster job can
  // only gang-allocate after the machine is repaired.
  auto run = [&](bool with_machine_failure) {
    SimConfig cfg = MakeSwiftSimConfig(2, 9);  // capacity 18
    cfg.machine_repair_seconds = 120.0;
    ClusterSim sim(cfg);
    SimJobSpec tiny = TwoStageJob("tiny", 2, 1, 50);
    if (with_machine_failure) {
      FailureInjection f;
      f.time = 0.5;
      f.stage = 0;
      f.kind = FailureKind::kMachineFailure;
      tiny.failures.push_back(f);
    }
    SimJobSpec big = TwoStageJob("big", 9, 9, 50, /*barrier=*/false);
    big.submit_time = 30.0;  // after the tiny job is done
    EXPECT_TRUE(sim.SubmitJob(tiny).ok());
    EXPECT_TRUE(sim.SubmitJob(big).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return *std::move(report);
  };
  const SimReport clean = run(false);
  const SimReport failed = run(true);
  ASSERT_TRUE(clean.jobs[1].completed);
  ASSERT_TRUE(failed.jobs[1].completed);
  // Without the failure the big job starts right away; with 9 executors
  // revoked it waits for the 120 s repair.
  EXPECT_LT(clean.jobs[1].first_alloc_time, 40.0);
  EXPECT_GT(failed.jobs[1].first_alloc_time, 100.0);
  EXPECT_TRUE(failed.jobs[0].completed);
}

TEST(ClusterSimTest, MachineFailureDetectionUsesHeartbeat) {
  // Machine failures are detected via heartbeats, so the recovery delay
  // exceeds the process-crash path's self-report delay.
  auto run = [&](FailureKind kind) {
    SimConfig cfg = MakeSwiftSimConfig(10, 8);
    cfg.machine_repair_seconds = 1.0;  // isolate the detection term
    cfg.rerun_cost_fraction = 1.0;
    ClusterSim sim(cfg);
    SimJobSpec job = TwoStageJob("j", 16, 8, 800, /*barrier=*/true);
    FailureInjection f;
    f.time = 25.0;  // late in the map stage: recovery is on the path
    f.stage = 0;
    f.kind = kind;
    job.failures.push_back(f);
    EXPECT_TRUE(sim.SubmitJob(job).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok());
    return report->jobs[0].Latency();
  };
  EXPECT_GT(run(FailureKind::kMachineFailure),
            run(FailureKind::kProcessCrash));
}

TEST(CompressionModelTest, MirrorsShufflePlaneNegotiation) {
  CompressionModel cm;
  // Off by default: wire bytes are payload bytes, codec time is free.
  EXPECT_FALSE(cm.Applies(ShuffleKind::kRemote, 1e8, 16));
  EXPECT_DOUBLE_EQ(cm.WireBytes(ShuffleKind::kRemote, 1e8, 16), 1e8);
  EXPECT_DOUBLE_EQ(cm.CompressTime(ShuffleKind::kRemote, 1e8, 16, 4), 0.0);

  cm.enabled = true;
  // Barrier edges above the per-partition floor compress at `ratio`.
  EXPECT_TRUE(cm.Applies(ShuffleKind::kRemote, 1e8, 16));
  EXPECT_TRUE(cm.Applies(ShuffleKind::kLocal, 1e8, 16));
  EXPECT_DOUBLE_EQ(cm.WireBytes(ShuffleKind::kRemote, 1e8, 16),
                   1e8 * cm.ratio);
  // Direct edges never compress (pipelined, latency-bound).
  EXPECT_FALSE(cm.Applies(ShuffleKind::kDirect, 1e8, 16));
  EXPECT_DOUBLE_EQ(cm.WireBytes(ShuffleKind::kDirect, 1e8, 16), 1e8);
  // Mean per-partition payload below min_edge_bytes ships raw.
  EXPECT_FALSE(cm.Applies(ShuffleKind::kRemote, 1e4, 16));
  // Codec wall time scales with payload and splits across machines.
  EXPECT_DOUBLE_EQ(cm.CompressTime(ShuffleKind::kRemote, 1e8, 16, 4),
                   1e8 / (cm.compress_bw * 4));
  EXPECT_DOUBLE_EQ(cm.DecompressTime(ShuffleKind::kRemote, 1e8, 16, 4),
                   1e8 / (cm.decompress_bw * 4));
  EXPECT_GT(cm.CompressTime(ShuffleKind::kRemote, 1e8, 16, 4),
            cm.DecompressTime(ShuffleKind::kRemote, 1e8, 16, 4));
}

TEST(CompressionModelTest, CompressedRemoteJobFinishesFasterOnSlowWire) {
  // On a wire where transfer dominates, halving the bytes must beat the
  // codec CPU it costs (the regime the compressed plane targets).
  auto run = [](bool enabled) {
    SimConfig cfg = MakeSwiftSimConfig(4, 8);
    cfg.medium = ShuffleMedium::kMemoryForcedKind;
    cfg.forced_kind = ShuffleKind::kRemote;
    cfg.net.bw_per_machine = 5.0e7;  // slow fabric: bytes dominate
    cfg.compress.enabled = enabled;
    ClusterSim sim(cfg);
    EXPECT_TRUE(sim.SubmitJob(TwoStageJob("z", 16, 8, 300)).ok());
    auto report = sim.Run();
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->jobs[0].completed);
    return report->jobs[0].finish_time;
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace swift
