// Randomized parity property test: the flat-table hash kernels
// (HashJoinOp / HashAggregateOp / HashPartition) against the legacy
// node-based row-map implementations they replaced, kept verbatim here
// as the oracle. Inputs mix int64 / float64 / string keys with NULLs,
// duplicate keys, cross-numeric-type equal keys (3 vs 3.0), and
// collision-adversarial strided keys. Runs under the asan/ubsan presets
// like every other test.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "exec/bound_expr.h"
#include "exec/operators.h"

namespace swift {
namespace {

// ---- Legacy oracle: the pre-flat-table row-map kernels ---------------

struct LegacyRowHash {
  std::size_t operator()(const Row& r) const { return HashRow(r); }
};
struct LegacyRowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

bool KeyHasNull(const Row& k) {
  for (const Value& v : k) {
    if (v.is_null()) return true;
  }
  return false;
}

Row EvalKeyRow(const std::vector<BoundExprPtr>& keys, const Row& row) {
  Row k;
  k.reserve(keys.size());
  for (const BoundExprPtr& e : keys) k.push_back(*e->Evaluate(row));
  return k;
}

// The old HashJoinOp::Open body: unordered_multimap build + probe.
std::vector<Row> LegacyHashJoin(const Batch& left, const Batch& right,
                                const std::vector<ExprPtr>& left_keys,
                                const std::vector<ExprPtr>& right_keys,
                                JoinType join_type) {
  auto bound_left = *BindAll(left_keys, left.schema);
  auto bound_right = *BindAll(right_keys, right.schema);
  std::unordered_multimap<Row, Row, LegacyRowHash, LegacyRowEq> build;
  for (const Row& r : right.rows) {
    Row key = EvalKeyRow(bound_right, r);
    if (KeyHasNull(key)) continue;
    build.emplace(std::move(key), r);
  }
  const std::size_t right_width = right.schema.num_fields();
  std::vector<Row> out;
  for (const Row& l : left.rows) {
    Row key = EvalKeyRow(bound_left, l);
    bool matched = false;
    if (!KeyHasNull(key)) {
      auto [lo, hi] = build.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        Row o = l;
        o.insert(o.end(), it->second.begin(), it->second.end());
        out.push_back(std::move(o));
        matched = true;
      }
    }
    if (!matched && join_type == JoinType::kLeftOuter) {
      Row o = l;
      o.resize(o.size() + right_width, Value::Null());
      out.push_back(std::move(o));
    }
  }
  return out;
}

// The old HashAggregateOp state machine, verbatim.
struct LegacyAggState {
  double sum = 0.0;
  int64_t count = 0;
  bool all_int = true;
  Value min;
  Value max;

  void Update(AggKind kind, const Value& v) {
    if (kind == AggKind::kCount) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      sum += v.AsDouble();
      if (!v.is_int64()) all_int = false;
    } else {
      all_int = false;
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  Value Finish(AggKind kind) const {
    switch (kind) {
      case AggKind::kCount:
        return Value(count);
      case AggKind::kSum:
        if (count == 0) return Value::Null();
        return all_int ? Value(static_cast<int64_t>(sum)) : Value(sum);
      case AggKind::kMin:
        return min;
      case AggKind::kMax:
        return max;
      case AggKind::kAvg:
        if (count == 0) return Value::Null();
        return Value(sum / static_cast<double>(count));
    }
    return Value::Null();
  }
};

// The old HashAggregateOp::Open body: Row-keyed unordered_map +
// first-seen key order.
std::vector<Row> LegacyHashAggregate(const Batch& in,
                                     const std::vector<ExprPtr>& groups,
                                     const std::vector<AggSpec>& aggs) {
  auto bound_groups = *BindAll(groups, in.schema);
  std::vector<BoundExprPtr> bound_args;
  for (const AggSpec& a : aggs) {
    bound_args.push_back(a.arg == nullptr ? nullptr
                                          : *Bind(a.arg, in.schema));
  }
  std::unordered_map<Row, std::vector<LegacyAggState>, LegacyRowHash,
                     LegacyRowEq>
      table;
  std::vector<Row> key_order;
  for (const Row& r : in.rows) {
    Row key = EvalKeyRow(bound_groups, r);
    auto it = table.find(key);
    if (it == table.end()) {
      it = table.emplace(key, std::vector<LegacyAggState>(aggs.size())).first;
      key_order.push_back(key);
    }
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      Value v = bound_args[a] == nullptr ? Value(int64_t{1})
                                         : *bound_args[a]->Evaluate(r);
      if (aggs[a].kind == AggKind::kCount && v.is_null()) continue;
      it->second[a].Update(aggs[a].kind, v);
    }
  }
  std::vector<Row> out;
  for (const Row& key : key_order) {
    const auto& states = table[key];
    Row o = key;
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      o.push_back(states[a].Finish(aggs[a].kind));
    }
    out.push_back(std::move(o));
  }
  return out;
}

// ---- Row multiset comparison ----------------------------------------

// Type-tagged text form so int64 3, float64 3.0, and string "3" stay
// distinct cells when comparing outputs.
std::string CellKey(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return "N";
    case DataType::kInt64:
      return "i" + std::to_string(v.int64());
    case DataType::kFloat64: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "f%.17g", v.float64());
      return buf;
    }
    case DataType::kString:
      return "s" + v.str();
  }
  return "?";
}

std::vector<std::string> RowMultiset(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) {
    std::string s;
    for (const Value& v : r) {
      s += CellKey(v);
      s.push_back('\x1f');
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- Random input generation ----------------------------------------

// Mixed-type key values drawn to force duplicates, cross-type equality
// (k and (double)k), NULLs, and collision-adversarial stride patterns.
Value RandomKeyValue(Rng& rng) {
  const double roll = rng.Uniform();
  if (roll < 0.15) return Value::Null();
  if (roll < 0.45) {
    const int64_t k = rng.UniformInt(-8, 8);
    return Value(k * (rng.Bernoulli(0.5) ? 1 : 1024));  // strided collisions
  }
  if (roll < 0.65) {
    // Half integral-valued floats (equal to int64 keys), half fractional.
    const int64_t k = rng.UniformInt(-8, 8);
    return rng.Bernoulli(0.5) ? Value(static_cast<double>(k))
                              : Value(k + 0.5);
  }
  static const char* kPool[] = {"", "a", "b", "ab", "3", "key", "KEY"};
  return Value(kPool[rng.UniformInt(0, 6)]);
}

Value RandomPayloadValue(Rng& rng) {
  const double roll = rng.Uniform();
  if (roll < 0.1) return Value::Null();
  if (roll < 0.5) return Value(rng.UniformInt(-1000, 1000));
  if (roll < 0.8) return Value(rng.Uniform(-10.0, 10.0));
  return Value("p" + std::to_string(rng.UniformInt(0, 99)));
}

Batch RandomBatch(Rng& rng, int rows, int key_cols, int payload_cols) {
  Batch b;
  std::vector<Field> fields;
  for (int c = 0; c < key_cols; ++c) {
    fields.push_back({"k" + std::to_string(c), DataType::kNull});
  }
  for (int c = 0; c < payload_cols; ++c) {
    fields.push_back({"p" + std::to_string(c), DataType::kNull});
  }
  b.schema = Schema(std::move(fields));
  for (int i = 0; i < rows; ++i) {
    Row r;
    for (int c = 0; c < key_cols; ++c) r.push_back(RandomKeyValue(rng));
    for (int c = 0; c < payload_cols; ++c) r.push_back(RandomPayloadValue(rng));
    b.rows.push_back(std::move(r));
  }
  return b;
}

std::vector<ExprPtr> KeyExprs(int key_cols) {
  std::vector<ExprPtr> keys;
  for (int c = 0; c < key_cols; ++c) {
    keys.push_back(Expr::Column("k" + std::to_string(c)));
  }
  return keys;
}

Batch RunOperator(OperatorPtr op) {
  auto out = CollectAll(op.get());
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return *out;
}

// ---- Properties ------------------------------------------------------

TEST(HashKernelsParityTest, JoinMatchesLegacyRowMap) {
  Rng rng(0xA11CE5EEDULL);
  for (int trial = 0; trial < 30; ++trial) {
    const int key_cols = 1 + static_cast<int>(rng.UniformInt(0, 1));
    const JoinType jt =
        rng.Bernoulli(0.5) ? JoinType::kInner : JoinType::kLeftOuter;
    Batch left = RandomBatch(rng, static_cast<int>(rng.UniformInt(0, 120)),
                             key_cols, 1);
    Batch right = RandomBatch(rng, static_cast<int>(rng.UniformInt(0, 120)),
                              key_cols, 1);
    const std::vector<ExprPtr> keys = KeyExprs(key_cols);

    std::vector<Row> expect = LegacyHashJoin(left, right, keys, keys, jt);
    Batch got = RunOperator(MakeHashJoin(
        MakeBatchSource(left.schema, {left}),
        MakeBatchSource(right.schema, {right}), keys, keys, jt));

    EXPECT_EQ(RowMultiset(got.rows), RowMultiset(expect))
        << "trial " << trial << " join_type "
        << (jt == JoinType::kInner ? "inner" : "left_outer");
    // Probe-side order is preserved exactly for unique-match joins; at
    // minimum the row counts must agree even when duplicate-match
    // emission order differs.
    EXPECT_EQ(got.rows.size(), expect.size());
  }
}

TEST(HashKernelsParityTest, AggregateMatchesLegacyRowMapExactly) {
  Rng rng(0xBEEFCAFEULL);
  for (int trial = 0; trial < 30; ++trial) {
    const int key_cols = 1 + static_cast<int>(rng.UniformInt(0, 1));
    Batch in = RandomBatch(rng, static_cast<int>(rng.UniformInt(0, 300)),
                           key_cols, 2);
    std::vector<ExprPtr> groups = KeyExprs(key_cols);
    std::vector<std::string> names;
    for (int c = 0; c < key_cols; ++c) names.push_back("k" + std::to_string(c));
    std::vector<AggSpec> aggs = {
        AggSpec{AggKind::kSum, Expr::Column("p0"), "s"},
        AggSpec{AggKind::kCount, Expr::Column("p0"), "c"},
        AggSpec{AggKind::kCount, nullptr, "cstar"},
        AggSpec{AggKind::kMin, Expr::Column("p1"), "mn"},
        AggSpec{AggKind::kMax, Expr::Column("p1"), "mx"},
        AggSpec{AggKind::kAvg, Expr::Column("p0"), "avg"},
    };

    std::vector<Row> expect = LegacyHashAggregate(in, groups, aggs);
    Batch got = RunOperator(MakeHashAggregate(
        MakeBatchSource(in.schema, {in}), groups, names, aggs));

    // Both sides update per-group state in input row order, so the sums
    // are bit-identical, and both emit groups in first-seen order — the
    // comparison is exact, not just multiset.
    ASSERT_EQ(got.rows.size(), expect.size()) << "trial " << trial;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ(got.rows[i].size(), expect[i].size());
      for (std::size_t j = 0; j < expect[i].size(); ++j) {
        EXPECT_EQ(CellKey(got.rows[i][j]), CellKey(expect[i][j]))
            << "trial " << trial << " row " << i << " col " << j;
      }
    }
  }
}

TEST(HashKernelsParityTest, PartitionPreservesRowsAndRoutesNullsToZero) {
  Rng rng(0xD15EA5EULL);
  for (int trial = 0; trial < 20; ++trial) {
    const int key_cols = 1 + static_cast<int>(rng.UniformInt(0, 1));
    const int n = 1 + static_cast<int>(rng.UniformInt(0, 15));
    Batch in = RandomBatch(rng, static_cast<int>(rng.UniformInt(0, 400)),
                           key_cols, 1);
    const std::vector<ExprPtr> keys = KeyExprs(key_cols);

    auto parts = HashPartition(in, keys, n);
    ASSERT_TRUE(parts.ok());
    // Row conservation: partitions are a permutation of the input.
    std::vector<Row> all;
    for (const Batch& p : *parts) {
      all.insert(all.end(), p.rows.begin(), p.rows.end());
    }
    EXPECT_EQ(RowMultiset(all), RowMultiset(in.rows)) << "trial " << trial;

    // NULL-keyed rows all land in partition 0; equal keys land together.
    auto bound = *BindAll(keys, in.schema);
    for (int p = 0; p < n; ++p) {
      for (const Row& r : (*parts)[p].rows) {
        Row key = EvalKeyRow(bound, r);
        if (KeyHasNull(key)) {
          EXPECT_EQ(p, 0) << "NULL key escaped partition 0";
        }
      }
    }
    // Determinism + equal-key co-location across both overloads: every
    // row with the same encoded key goes to the same partition.
    Batch copy = in;
    auto parts2 = HashPartition(std::move(copy), keys, n);
    ASSERT_TRUE(parts2.ok());
    for (int p = 0; p < n; ++p) {
      EXPECT_EQ(RowMultiset((*parts)[p].rows), RowMultiset((*parts2)[p].rows));
    }
  }
}

// Cross-numeric-type keys: rows keyed 3 (int64) and 3.0 (float64) must
// join with each other and aggregate into one group, exactly like the
// legacy Compare()-based maps.
TEST(HashKernelsParityTest, CrossNumericTypeKeysShareOneGroup) {
  Batch in;
  in.schema = Schema({{"k0", DataType::kNull}, {"p0", DataType::kInt64}});
  in.rows = {{Value(int64_t{3}), Value(int64_t{1})},
             {Value(3.0), Value(int64_t{10})},
             {Value(int64_t{3}), Value(int64_t{100})},
             {Value(-0.0), Value(int64_t{7})},
             {Value(int64_t{0}), Value(int64_t{70})}};
  const std::vector<ExprPtr> keys = {Expr::Column("k0")};

  std::vector<AggSpec> aggs = {AggSpec{AggKind::kSum, Expr::Column("p0"), "s"}};
  std::vector<Row> expect = LegacyHashAggregate(in, keys, aggs);
  Batch got = RunOperator(
      MakeHashAggregate(MakeBatchSource(in.schema, {in}), keys, {"k0"}, aggs));
  ASSERT_EQ(got.rows.size(), 2u);
  EXPECT_EQ(RowMultiset(got.rows), RowMultiset(expect));
  EXPECT_EQ(got.rows[0][1].int64(), 111);  // 3-group, first seen
  EXPECT_EQ(got.rows[1][1].int64(), 77);   // 0-group

  Batch joined = RunOperator(MakeHashJoin(MakeBatchSource(in.schema, {in}),
                                          MakeBatchSource(in.schema, {in}),
                                          keys, keys, JoinType::kInner));
  std::vector<Row> jexpect = LegacyHashJoin(in, in, keys, keys,
                                            JoinType::kInner);
  EXPECT_EQ(joined.rows.size(), 13u);  // 3x3 for the 3-group + 2x2 for 0
  EXPECT_EQ(RowMultiset(joined.rows), RowMultiset(jexpect));
}

}  // namespace
}  // namespace swift
