// Property tests: the graphlet partitioners must uphold their
// invariants on randomly generated layered DAGs (parameterized seed
// sweep).

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "dag/dag_builder.h"
#include "partition/partitioners.h"

namespace swift {
namespace {

using OK = OperatorKind;

// Random layered DAG: `layers` layers of 1..4 stages; every stage has
// at least one incoming edge from an earlier layer (except sources).
JobDag RandomDag(uint64_t seed) {
  Rng rng(seed);
  DagBuilder b("random-" + std::to_string(seed));
  const int layers = static_cast<int>(rng.UniformInt(1, 6));
  std::vector<std::vector<StageId>> layer_ids;
  for (int l = 0; l < layers; ++l) {
    const int width = static_cast<int>(rng.UniformInt(1, 4));
    std::vector<StageId> ids;
    for (int w = 0; w < width; ++w) {
      StageDef def;
      def.name = "s" + std::to_string(l) + "_" + std::to_string(w);
      def.task_count = static_cast<int>(rng.UniformInt(1, 50));
      const bool barrier = rng.Bernoulli(0.4);
      def.operators = {l == 0 ? OK::kTableScan : OK::kShuffleRead,
                       barrier ? OK::kMergeSort : OK::kStreamLine,
                       OK::kShuffleWrite};
      def.output_bytes_per_task = rng.Uniform(1e5, 1e8);
      def.idempotent = rng.Bernoulli(0.8);
      ids.push_back(b.AddStage(std::move(def)));
    }
    if (l > 0) {
      for (StageId id : ids) {
        // 1-2 parents from any earlier layer.
        const int parents = static_cast<int>(rng.UniformInt(1, 2));
        std::set<StageId> chosen;
        for (int p = 0; p < parents; ++p) {
          const auto& src_layer = layer_ids[static_cast<std::size_t>(
              rng.UniformInt(0, l - 1))];
          StageId src = src_layer[static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<int64_t>(src_layer.size()) - 1))];
          if (chosen.insert(src).second) b.AddEdge(src, id);
        }
      }
    }
    layer_ids.push_back(std::move(ids));
  }
  auto dag = b.Build();
  EXPECT_TRUE(dag.ok()) << dag.status().ToString();
  return std::move(dag).ValueOrDie();
}

class PartitionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionPropertyTest, CoverageExactlyOnce) {
  JobDag dag = RandomDag(GetParam());
  for (const Partitioner* p :
       std::initializer_list<const Partitioner*>{
           new ShuffleModeAwarePartitioner(), new WholeJobPartitioner(),
           new PerStagePartitioner(), new DataSizePartitioner(5e8)}) {
    auto plan = p->Partition(dag);
    ASSERT_TRUE(plan.ok()) << p->name() << ": " << plan.status().ToString();
    std::set<StageId> seen;
    for (const Graphlet& g : plan->graphlets) {
      for (StageId s : g.stages) {
        EXPECT_TRUE(seen.insert(s).second)
            << p->name() << " duplicated stage " << s;
      }
    }
    EXPECT_EQ(seen.size(), dag.stages().size()) << p->name();
    delete p;
  }
}

TEST_P(PartitionPropertyTest, SwiftPlanHasNoCrossingPipelineEdges) {
  JobDag dag = RandomDag(GetParam());
  auto plan = ShuffleModeAwarePartitioner().Partition(dag);
  ASSERT_TRUE(plan.ok());
  // Unless cycle condensation merged everything, a pipeline edge never
  // crosses a graphlet boundary.
  for (const EdgeDef& e : dag.edges()) {
    if (dag.EdgeKindOf(e.src, e.dst) == EdgeKind::kPipeline) {
      EXPECT_EQ(plan->GraphletOf(e.src), plan->GraphletOf(e.dst))
          << "pipeline edge " << e.src << "->" << e.dst << " crosses";
    }
  }
}

TEST_P(PartitionPropertyTest, SubmissionOrderRespectsDeps) {
  JobDag dag = RandomDag(GetParam());
  for (const Partitioner* p :
       std::initializer_list<const Partitioner*>{
           new ShuffleModeAwarePartitioner(), new DataSizePartitioner(1e8)}) {
    auto plan = p->Partition(dag);
    ASSERT_TRUE(plan.ok());
    auto order = plan->SubmissionOrder();
    ASSERT_EQ(order.size(), plan->graphlets.size()) << p->name();
    std::set<GraphletId> done;
    for (GraphletId g : order) {
      for (GraphletId dep : plan->deps[static_cast<std::size_t>(g)]) {
        EXPECT_TRUE(done.count(dep) > 0)
            << p->name() << ": graphlet " << g << " before dep " << dep;
      }
      done.insert(g);
    }
    delete p;
  }
}

TEST_P(PartitionPropertyTest, DepsOnlyFromDagEdges) {
  JobDag dag = RandomDag(GetParam());
  auto plan = ShuffleModeAwarePartitioner().Partition(dag);
  ASSERT_TRUE(plan.ok());
  // Every declared dependency corresponds to at least one DAG edge
  // between the two graphlets.
  for (std::size_t g = 0; g < plan->deps.size(); ++g) {
    for (GraphletId dep : plan->deps[g]) {
      bool found = false;
      for (const EdgeDef& e : dag.edges()) {
        if (plan->GraphletOf(e.src) == dep &&
            plan->GraphletOf(e.dst) == static_cast<GraphletId>(g)) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "phantom dep " << dep << " -> " << g;
    }
  }
}

TEST_P(PartitionPropertyTest, TriggerStageHasCrossingOutEdge) {
  JobDag dag = RandomDag(GetParam());
  auto plan = ShuffleModeAwarePartitioner().Partition(dag);
  ASSERT_TRUE(plan.ok());
  for (const Graphlet& g : plan->graphlets) {
    if (g.trigger_stage < 0) continue;
    bool crossing = false;
    for (StageId out : dag.outputs(g.trigger_stage)) {
      if (plan->GraphletOf(out) != g.id) crossing = true;
    }
    EXPECT_TRUE(crossing) << "trigger " << g.trigger_stage
                          << " has no crossing out-edge";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace swift
