#include "fault/recovery.h"

#include <gtest/gtest.h>

#include "dag/dag_builder.h"
#include "fault/heartbeat.h"
#include "partition/partitioners.h"

namespace swift {
namespace {

using OK = OperatorKind;

// A 3-graphlet job:
//   g1: scan1, scan2 -> sorter (barrier out)
//   g2: mid -> sorter2 (barrier out)
//   g3: sink
struct Fixture {
  JobDag dag;
  GraphletPlan plan;
  StageId scan1, scan2, sorter, mid, sorter2, sink;
};

Fixture Build(bool mid_idempotent = true) {
  DagBuilder b("recovery");
  Fixture f;
  f.scan1 = b.AddStage("scan1", 2, {OK::kTableScan, OK::kShuffleWrite});
  f.scan2 = b.AddStage("scan2", 2, {OK::kTableScan, OK::kShuffleWrite});
  f.sorter = b.AddStage("sorter", 2,
                        {OK::kShuffleRead, OK::kMergeSort, OK::kShuffleWrite});
  f.mid = b.AddStage("mid", 3, {OK::kShuffleRead, OK::kShuffleWrite});
  f.sorter2 = b.AddStage("sorter2", 2,
                         {OK::kShuffleRead, OK::kMergeSort, OK::kShuffleWrite});
  f.sink = b.AddStage("sink", 1, {OK::kShuffleRead, OK::kAdhocSink});
  b.MutableStage(f.mid).idempotent = mid_idempotent;
  b.AddEdge(f.scan1, f.sorter)
      .AddEdge(f.scan2, f.sorter)
      .AddEdge(f.sorter, f.mid)
      .AddEdge(f.mid, f.sorter2)
      .AddEdge(f.sorter2, f.sink);
  auto dag = b.Build();
  EXPECT_TRUE(dag.ok());
  f.dag = std::move(dag).ValueOrDie();
  auto plan = ShuffleModeAwarePartitioner().Partition(f.dag);
  EXPECT_TRUE(plan.ok());
  f.plan = std::move(plan).ValueOrDie();
  return f;
}

RecoveryContext CtxWithExecuted(std::initializer_list<TaskRef> tasks) {
  RecoveryContext ctx;
  ctx.executed = tasks;
  return ctx;
}

TEST(RecoveryTest, FixtureHasThreeGraphlets) {
  Fixture f = Build();
  EXPECT_EQ(f.plan.graphlets.size(), 3u);
  EXPECT_EQ(f.plan.GraphletOf(f.scan1), f.plan.GraphletOf(f.sorter));
  EXPECT_EQ(f.plan.GraphletOf(f.mid), f.plan.GraphletOf(f.sorter2));
  EXPECT_NE(f.plan.GraphletOf(f.sorter), f.plan.GraphletOf(f.mid));
}

TEST(RecoveryTest, ApplicationErrorIsUseless) {
  Fixture f = Build();
  RecoveryPlanner planner(&f.dag, &f.plan);
  auto d = planner.Plan(TaskRef{f.mid, 0}, FailureKind::kApplicationError,
                        CtxWithExecuted({}));
  EXPECT_EQ(d.kase, RecoveryCase::kUseless);
  EXPECT_TRUE(d.report_only);
  EXPECT_TRUE(d.rerun.empty());
}

TEST(RecoveryTest, IntraGraphletIdempotentRerunsOnlyFailedTask) {
  Fixture f = Build();
  RecoveryPlanner planner(&f.dag, &f.plan);
  // sorter failed; its intra-graphlet predecessors are scan1/scan2.
  auto d = planner.Plan(TaskRef{f.sorter, 1}, FailureKind::kProcessCrash,
                        CtxWithExecuted({TaskRef{f.scan1, 0},
                                         TaskRef{f.scan1, 1},
                                         TaskRef{f.scan2, 0},
                                         TaskRef{f.scan2, 1}}));
  EXPECT_EQ(d.kase, RecoveryCase::kOutputFailure);  // successors cross-graphlet
  ASSERT_EQ(d.rerun.size(), 1u);
  EXPECT_EQ(d.rerun[0], (TaskRef{f.sorter, 1}));
  // scan1 (2 tasks) + scan2 (2 tasks) re-send without re-running.
  EXPECT_EQ(d.resend_upstream.size(), 4u);
  EXPECT_FALSE(d.report_only);
}

TEST(RecoveryTest, IdempotentNoActionWhenSuccessorsHaveData) {
  Fixture f = Build();
  RecoveryPlanner planner(&f.dag, &f.plan);
  RecoveryContext ctx;
  // mid's successor tasks (sorter2 x2) executed AND received output.
  ctx.executed = {TaskRef{f.sorter2, 0}, TaskRef{f.sorter2, 1}};
  ctx.received_output = ctx.executed;
  auto d = planner.Plan(TaskRef{f.mid, 1}, FailureKind::kProcessCrash, ctx);
  EXPECT_EQ(d.kase, RecoveryCase::kNone);
  EXPECT_TRUE(d.rerun.empty());
}

TEST(RecoveryTest, IdempotentRerunsWhenSuccessorLacksData) {
  Fixture f = Build();
  RecoveryPlanner planner(&f.dag, &f.plan);
  RecoveryContext ctx;
  ctx.executed = {TaskRef{f.sorter2, 0}, TaskRef{f.sorter2, 1}};
  ctx.received_output = {TaskRef{f.sorter2, 0}};  // task 1 missing data
  auto d = planner.Plan(TaskRef{f.mid, 1}, FailureKind::kProcessCrash, ctx);
  EXPECT_EQ(d.rerun.size(), 1u);
}

TEST(RecoveryTest, InputFailureNeedsNoUpstreamNotification) {
  Fixture f = Build();
  RecoveryPlanner planner(&f.dag, &f.plan);
  // mid's only predecessor (sorter) is in another graphlet: its data is
  // parked in Cache Workers, so the new instance just re-fetches.
  auto d = planner.Plan(TaskRef{f.mid, 0}, FailureKind::kProcessCrash,
                        CtxWithExecuted({TaskRef{f.sorter, 0},
                                         TaskRef{f.sorter, 1}}));
  EXPECT_EQ(d.kase, RecoveryCase::kInputFailure);
  EXPECT_TRUE(d.resend_upstream.empty());
  ASSERT_EQ(d.rerun.size(), 1u);
}

TEST(RecoveryTest, NonIdempotentRerunsExecutedSuccessorsTransitively) {
  Fixture f = Build(/*mid_idempotent=*/false);
  RecoveryPlanner planner(&f.dag, &f.plan);
  RecoveryContext ctx;
  ctx.executed = {TaskRef{f.sorter2, 0}, TaskRef{f.sorter2, 1},
                  TaskRef{f.sink, 0}};
  auto d = planner.Plan(TaskRef{f.mid, 2}, FailureKind::kProcessCrash, ctx);
  EXPECT_EQ(d.kase, RecoveryCase::kIntraNonIdempotent);
  // failed + sorter2 x2 + sink (transitive) = 4 re-runs.
  EXPECT_EQ(d.rerun.size(), 4u);
  EXPECT_EQ(d.rerun[0], (TaskRef{f.mid, 2}));
  // Outputs of mid and sorter2 are invalidated.
  EXPECT_EQ(d.invalidate_outputs.size(), 2u);
}

TEST(RecoveryTest, NonIdempotentWithNoExecutedSuccessors) {
  Fixture f = Build(/*mid_idempotent=*/false);
  RecoveryPlanner planner(&f.dag, &f.plan);
  auto d = planner.Plan(TaskRef{f.mid, 0}, FailureKind::kProcessCrash,
                        CtxWithExecuted({}));
  EXPECT_EQ(d.rerun.size(), 1u);
}

TEST(RecoveryTest, JobRestartRerunsEverythingExecuted) {
  Fixture f = Build();
  RecoveryPlanner planner(&f.dag, &f.plan);
  RecoveryContext ctx = CtxWithExecuted(
      {TaskRef{f.scan1, 0}, TaskRef{f.scan1, 1}, TaskRef{f.scan2, 0},
       TaskRef{f.scan2, 1}, TaskRef{f.sorter, 0}});
  EXPECT_EQ(planner.JobRestartRerunSet(ctx).size(), 5u);
}

TEST(HeartbeatTest, IntervalFollowsClusterSize) {
  EXPECT_DOUBLE_EQ(HeartbeatMonitor::IntervalForClusterSize(100), 5.0);
  EXPECT_DOUBLE_EQ(HeartbeatMonitor::IntervalForClusterSize(1000), 10.0);
  EXPECT_DOUBLE_EQ(HeartbeatMonitor::IntervalForClusterSize(10000), 15.0);
}

TEST(HeartbeatTest, DetectsMissingBeats) {
  HeartbeatMonitor hb(100, /*miss_threshold=*/3);  // 5 s interval
  hb.ReportHeartbeat(0, 0.0);
  hb.ReportHeartbeat(1, 0.0);
  hb.ReportHeartbeat(0, 14.0);
  // At t=16: machine 1 last beat 0.0, 16 > 15 -> failed.
  auto failed = hb.DetectFailed(16.0);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0], 1);
  EXPECT_DOUBLE_EQ(hb.DetectionDelay(), 15.0);
}

TEST(HeartbeatTest, RemovedMachineNotReported) {
  HeartbeatMonitor hb(100);
  hb.ReportHeartbeat(0, 0.0);
  hb.Remove(0);
  EXPECT_TRUE(hb.DetectFailed(1000.0).empty());
}

TEST(HealthMonitorTest, ReadOnlyAfterFailureBurst) {
  MachineHealthMonitor hm(/*failure_threshold=*/3, /*window=*/10.0);
  hm.RecordTaskFailure(5, 1.0);
  hm.RecordTaskFailure(5, 2.0);
  EXPECT_FALSE(hm.IsReadOnly(5));
  hm.RecordTaskFailure(5, 3.0);
  EXPECT_TRUE(hm.IsReadOnly(5));
  EXPECT_EQ(hm.ReadOnlyMachines(), std::vector<int>{5});
}

TEST(HealthMonitorTest, WindowSlides) {
  MachineHealthMonitor hm(3, 10.0);
  hm.RecordTaskFailure(1, 0.0);
  hm.RecordTaskFailure(1, 1.0);
  // Third failure 20 s later: the first two aged out.
  hm.RecordTaskFailure(1, 21.0);
  EXPECT_FALSE(hm.IsReadOnly(1));
}

TEST(HealthMonitorTest, ManualMarkAndClear) {
  MachineHealthMonitor hm;
  hm.MarkReadOnly(2);
  EXPECT_TRUE(hm.IsReadOnly(2));
  hm.Clear(2);
  EXPECT_FALSE(hm.IsReadOnly(2));
}

TEST(HealthMonitorTest, WindowBoundaryIsInclusive) {
  // An entry exactly window_seconds old still counts (drop is strict >).
  MachineHealthMonitor hm(3, 10.0);
  hm.RecordTaskFailure(1, 0.0);
  hm.RecordTaskFailure(1, 5.0);
  hm.RecordTaskFailure(1, 10.0);  // first failure is exactly 10 s old
  EXPECT_TRUE(hm.IsReadOnly(1));

  MachineHealthMonitor hm2(3, 10.0);
  hm2.RecordTaskFailure(1, 0.0);
  hm2.RecordTaskFailure(1, 5.0);
  hm2.RecordTaskFailure(1, 10.1);  // now the first one aged out
  EXPECT_FALSE(hm2.IsReadOnly(1));
}

TEST(HealthMonitorTest, ProbationReturnsMachineToRotation) {
  MachineHealthMonitor hm(3, 10.0, /*probation=*/30.0);
  hm.RecordTaskFailure(4, 1.0);
  hm.RecordTaskFailure(4, 2.0);
  hm.RecordTaskFailure(4, 3.0);
  ASSERT_TRUE(hm.IsReadOnly(4));
  // Just inside probation: still drained.
  EXPECT_TRUE(hm.ClearExpired(32.9).empty());
  EXPECT_TRUE(hm.IsReadOnly(4));
  // Clean for a full probation window: back in rotation.
  EXPECT_EQ(hm.ClearExpired(33.0), std::vector<int>{4});
  EXPECT_FALSE(hm.IsReadOnly(4));
  // History is wiped: one fresh failure must not re-drain it...
  hm.RecordTaskFailure(4, 34.0);
  EXPECT_FALSE(hm.IsReadOnly(4));
  // ...but a fresh burst does.
  hm.RecordTaskFailure(4, 35.0);
  hm.RecordTaskFailure(4, 36.0);
  EXPECT_TRUE(hm.IsReadOnly(4));
}

TEST(HealthMonitorTest, ProbationDisabledByDefault) {
  MachineHealthMonitor hm(3, 10.0);  // probation defaults to 0 = off
  hm.RecordTaskFailure(2, 1.0);
  hm.RecordTaskFailure(2, 1.5);
  hm.RecordTaskFailure(2, 2.0);
  ASSERT_TRUE(hm.IsReadOnly(2));
  EXPECT_TRUE(hm.ClearExpired(1e9).empty());
  EXPECT_TRUE(hm.IsReadOnly(2));
}

TEST(HealthMonitorTest, ProbationTimerResetsOnNewFailure) {
  MachineHealthMonitor hm(3, 10.0, /*probation=*/30.0);
  hm.RecordTaskFailure(7, 1.0);
  hm.RecordTaskFailure(7, 2.0);
  hm.RecordTaskFailure(7, 3.0);
  ASSERT_TRUE(hm.IsReadOnly(7));
  // A failure while drained pushes the probation deadline out.
  hm.RecordTaskFailure(7, 20.0);
  EXPECT_TRUE(hm.ClearExpired(33.0).empty());
  EXPECT_TRUE(hm.IsReadOnly(7));
  EXPECT_EQ(hm.ClearExpired(50.0), std::vector<int>{7});
}

TEST(HealthMonitorTest, ManualMarksNeverAutoClear) {
  MachineHealthMonitor hm(3, 10.0, /*probation=*/30.0);
  hm.MarkReadOnly(9);  // machine-failure path, no recorded task failure
  EXPECT_TRUE(hm.ClearExpired(1e9).empty());
  EXPECT_TRUE(hm.IsReadOnly(9));
  hm.Clear(9);
  EXPECT_FALSE(hm.IsReadOnly(9));
}

}  // namespace
}  // namespace swift
