#include "exec/expression.h"

#include <gtest/gtest.h>

namespace swift {
namespace {

const Schema& TestSchema() {
  static const Schema s({{"i", DataType::kInt64},
                         {"f", DataType::kFloat64},
                         {"s", DataType::kString},
                         {"n", DataType::kNull}});
  return s;
}

Row TestRow() {
  return {Value(int64_t{6}), Value(2.5), Value("forest green"), Value::Null()};
}

Value Eval(const ExprPtr& e) {
  auto r = e->Evaluate(TestSchema(), TestRow());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Value::Null();
}

TEST(ExpressionTest, ColumnAndLiteral) {
  EXPECT_EQ(Eval(Expr::Column("i")).int64(), 6);
  EXPECT_DOUBLE_EQ(Eval(Expr::Column("f")).float64(), 2.5);
  EXPECT_EQ(Eval(Expr::Literal(Value("x"))).str(), "x");
}

TEST(ExpressionTest, UnknownColumnErrors) {
  auto r = Expr::Column("nope")->Evaluate(TestSchema(), TestRow());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ExpressionTest, IntegerArithmeticStaysInt) {
  auto e = Expr::Binary(BinaryOp::kMul, Expr::Column("i"),
                        Expr::Literal(Value(int64_t{7})));
  Value v = Eval(e);
  ASSERT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64(), 42);
}

TEST(ExpressionTest, MixedArithmeticPromotesToDouble) {
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Column("i"), Expr::Column("f"));
  Value v = Eval(e);
  ASSERT_TRUE(v.is_float64());
  EXPECT_DOUBLE_EQ(v.float64(), 8.5);
}

TEST(ExpressionTest, DivisionAlwaysDouble) {
  auto e = Expr::Binary(BinaryOp::kDiv, Expr::Literal(Value(int64_t{7})),
                        Expr::Literal(Value(int64_t{2})));
  EXPECT_DOUBLE_EQ(Eval(e).float64(), 3.5);
}

TEST(ExpressionTest, DivisionByZeroIsApplicationError) {
  auto e = Expr::Binary(BinaryOp::kDiv, Expr::Column("i"),
                        Expr::Literal(Value(int64_t{0})));
  auto r = e->Evaluate(TestSchema(), TestRow());
  EXPECT_EQ(r.status().code(), StatusCode::kApplication);
}

TEST(ExpressionTest, ArithmeticOnStringIsApplicationError) {
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Column("s"), Expr::Column("i"));
  EXPECT_EQ(e->Evaluate(TestSchema(), TestRow()).status().code(),
            StatusCode::kApplication);
}

TEST(ExpressionTest, NullPropagatesThroughArithmetic) {
  auto e = Expr::Binary(BinaryOp::kAdd, Expr::Column("n"), Expr::Column("i"));
  EXPECT_TRUE(Eval(e).is_null());
}

TEST(ExpressionTest, Comparisons) {
  auto lt = Expr::Binary(BinaryOp::kLt, Expr::Column("i"),
                         Expr::Literal(Value(int64_t{10})));
  EXPECT_EQ(Eval(lt).int64(), 1);
  auto ge = Expr::Binary(BinaryOp::kGe, Expr::Column("f"),
                         Expr::Literal(Value(99.0)));
  EXPECT_EQ(Eval(ge).int64(), 0);
  auto eq = Expr::Binary(BinaryOp::kEq, Expr::Column("i"),
                         Expr::Literal(Value(6.0)));
  EXPECT_EQ(Eval(eq).int64(), 1);  // cross-type numeric equality
}

TEST(ExpressionTest, NullComparisonIsNull) {
  auto e = Expr::Binary(BinaryOp::kEq, Expr::Column("n"),
                        Expr::Literal(Value(int64_t{1})));
  EXPECT_TRUE(Eval(e).is_null());
}

TEST(ExpressionTest, KleeneAndOr) {
  auto t = Expr::Literal(Value(int64_t{1}));
  auto f = Expr::Literal(Value(int64_t{0}));
  auto n = Expr::Literal(Value::Null());
  // false AND NULL = false (short circuit); true OR NULL = true.
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kAnd, f, n)).int64(), 0);
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kOr, t, n)).int64(), 1);
  // NULL AND true = NULL; NULL OR false = NULL.
  EXPECT_TRUE(Eval(Expr::Binary(BinaryOp::kAnd, n, t)).is_null());
  EXPECT_TRUE(Eval(Expr::Binary(BinaryOp::kOr, n, f)).is_null());
  // NULL AND false = false even with NULL first.
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kAnd, n, f)).int64(), 0);
}

TEST(ExpressionTest, LikeOperator) {
  auto e = Expr::Binary(BinaryOp::kLike, Expr::Column("s"),
                        Expr::Literal(Value("%green%")));
  EXPECT_EQ(Eval(e).int64(), 1);
  auto miss = Expr::Binary(BinaryOp::kLike, Expr::Column("s"),
                           Expr::Literal(Value("%blue%")));
  EXPECT_EQ(Eval(miss).int64(), 0);
}

TEST(ExpressionTest, LikeOnNumberIsApplicationError) {
  auto e = Expr::Binary(BinaryOp::kLike, Expr::Column("i"),
                        Expr::Literal(Value("%1%")));
  EXPECT_EQ(e->Evaluate(TestSchema(), TestRow()).status().code(),
            StatusCode::kApplication);
}

TEST(ExpressionTest, NotAndNegate) {
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNot, Expr::Literal(Value(int64_t{0}))))
                .int64(),
            1);
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNeg, Expr::Column("i"))).int64(), -6);
  EXPECT_DOUBLE_EQ(
      Eval(Expr::Unary(UnaryOp::kNeg, Expr::Column("f"))).float64(), -2.5);
}

TEST(ExpressionTest, SubstrFunction) {
  // substr('forest green', 8, 5) -> 'green'; 1-based like the paper's Q9.
  auto e = Expr::Function(
      "substr", {Expr::Column("s"), Expr::Literal(Value(int64_t{8})),
                 Expr::Literal(Value(int64_t{5}))});
  EXPECT_EQ(Eval(e).str(), "green");
}

TEST(ExpressionTest, SubstrOutOfRangeIsEmpty) {
  auto e = Expr::Function(
      "substr", {Expr::Column("s"), Expr::Literal(Value(int64_t{100})),
                 Expr::Literal(Value(int64_t{4}))});
  EXPECT_EQ(Eval(e).str(), "");
}

TEST(ExpressionTest, LowerUpperAbs) {
  EXPECT_EQ(Eval(Expr::Function("upper", {Expr::Literal(Value("ab"))})).str(),
            "AB");
  EXPECT_EQ(Eval(Expr::Function("lower", {Expr::Literal(Value("AB"))})).str(),
            "ab");
  EXPECT_EQ(
      Eval(Expr::Function("abs", {Expr::Literal(Value(int64_t{-4}))})).int64(),
      4);
}

TEST(ExpressionTest, UnknownFunctionIsApplicationError) {
  auto e = Expr::Function("frobnicate", {});
  EXPECT_EQ(e->Evaluate(TestSchema(), TestRow()).status().code(),
            StatusCode::kApplication);
}

TEST(ExpressionTest, EvaluatePredicateTreatsNullAsFalse) {
  auto r = EvaluatePredicate(*Expr::Column("n"), TestSchema(), TestRow());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  auto t = EvaluatePredicate(*Expr::Column("i"), TestSchema(), TestRow());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(*t);
}

TEST(ExpressionTest, CollectColumns) {
  auto e = Expr::Binary(
      BinaryOp::kAdd, Expr::Column("a"),
      Expr::Function("abs", {Expr::Binary(BinaryOp::kMul, Expr::Column("b"),
                                          Expr::Literal(Value(2.0)))}));
  std::vector<std::string> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "b"}));
}

TEST(ExpressionTest, ToStringRendersTree) {
  auto e = Expr::Binary(BinaryOp::kGe, Expr::Column("x"),
                        Expr::Literal(Value(int64_t{3})));
  EXPECT_EQ(e->ToString(), "(x >= 3)");
  auto f = Expr::Function("substr", {Expr::Column("s"),
                                     Expr::Literal(Value(int64_t{1})),
                                     Expr::Literal(Value(int64_t{4}))});
  EXPECT_EQ(f->ToString(), "substr(s, 1, 4)");
}

TEST(ExpressionTest, AsColumnName) {
  auto c = Expr::Column("q");
  auto l = Expr::Literal(Value(int64_t{1}));
  ASSERT_NE(AsColumnName(*c), nullptr);
  EXPECT_EQ(*AsColumnName(*c), "q");
  EXPECT_EQ(AsColumnName(*l), nullptr);
}

TEST(ExpressionTest, OutputTypes) {
  const Schema& s = TestSchema();
  EXPECT_EQ(*Expr::Column("i")->OutputType(s), DataType::kInt64);
  EXPECT_EQ(*Expr::Binary(BinaryOp::kDiv, Expr::Column("i"), Expr::Column("i"))
                 ->OutputType(s),
            DataType::kFloat64);
  EXPECT_EQ(*Expr::Binary(BinaryOp::kAdd, Expr::Column("i"), Expr::Column("f"))
                 ->OutputType(s),
            DataType::kFloat64);
  EXPECT_EQ(*Expr::Function("substr", {Expr::Column("s")})->OutputType(s),
            DataType::kString);
}

}  // namespace
}  // namespace swift
