#include "exec/value.h"

#include <gtest/gtest.h>

namespace swift {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{3}).int64(), 3);
  EXPECT_DOUBLE_EQ(Value(2.5).float64(), 2.5);
  EXPECT_EQ(Value("abc").str(), "abc");
  EXPECT_EQ(Value(int64_t{3}).type(), DataType::kInt64);
  EXPECT_EQ(Value(2.5).type(), DataType::kFloat64);
  EXPECT_EQ(Value("x").type(), DataType::kString);
  EXPECT_EQ(Value::Null().type(), DataType::kNull);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{3}).Compare(Value(3.0)), 0);
  EXPECT_LT(Value(int64_t{2}).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value(int64_t{-100})), 0);
  EXPECT_LT(Value::Null().Compare(Value("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("apple").Compare(Value("banana")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
  // ISO dates compare correctly as strings.
  EXPECT_LT(Value("1995-03-15").Compare(Value("1996-01-01")), 0);
}

TEST(ValueTest, MixedTypeTotalOrder) {
  // Numbers sort before strings; the order is total and antisymmetric.
  EXPECT_LT(Value(int64_t{5}).Compare(Value("5")), 0);
  EXPECT_GT(Value("5").Compare(Value(5.0)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("key").Hash(), Value("key").Hash());
  EXPECT_TRUE(Value(int64_t{3}) == Value(3.0));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(ValueTest, AsDoubleWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Value(1.25).AsDouble(), 1.25);
}

TEST(ValueTest, HashRowOrderSensitive) {
  Row a = {Value(int64_t{1}), Value(int64_t{2})};
  Row b = {Value(int64_t{2}), Value(int64_t{1})};
  Row c = {Value(int64_t{1}), Value(int64_t{2})};
  EXPECT_EQ(HashRow(a), HashRow(c));
  EXPECT_NE(HashRow(a), HashRow(b));
}

}  // namespace
}  // namespace swift
