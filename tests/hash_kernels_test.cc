// Unit tests for the vectorized hash kernels: the shared 64-bit mixer,
// the normalized KeyEncoder, the flat swiss-style FlatKeyTable, and the
// HashPartition skew fix (sequential/strided int64 keys must spread
// within +/-20% of uniform, where the old identity-hash `HashRow % n`
// striped).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/hash64.h"
#include "exec/hash_table.h"
#include "exec/key_encoder.h"
#include "exec/operators.h"

namespace swift {
namespace {

std::string EncodeOne(const Value& v) {
  std::string out;
  KeyEncoder::AppendValue(v, &out);
  return out;
}

std::string EncodeRow(const Row& key) {
  KeyEncoder enc;
  bool has_null = false;
  return std::string(enc.Encode(key, &has_null));
}

// ---- Hash64 / Mix64 / RangeReduce -----------------------------------

TEST(Hash64Test, DeterministicAndLengthSensitive) {
  const std::string a = "hello world";
  EXPECT_EQ(Hash64(a), Hash64(a));
  EXPECT_NE(Hash64(std::string_view("hello world")),
            Hash64(std::string_view("hello worl")));
  EXPECT_NE(Hash64(std::string_view("")), Hash64(std::string_view("\0", 1)));
}

TEST(Hash64Test, EveryLengthUpTo128Hashable) {
  std::string s;
  std::set<uint64_t> seen;
  for (int len = 0; len <= 128; ++len) {
    seen.insert(Hash64(s));
    s.push_back(static_cast<char>('a' + len % 26));
  }
  // All prefixes hash distinctly (a collision here would be astonishing).
  EXPECT_EQ(seen.size(), 129u);
}

TEST(Hash64Test, SeedChangesHash) {
  const std::string s = "key";
  EXPECT_NE(Hash64(s.data(), s.size(), 1), Hash64(s.data(), s.size(), 2));
}

TEST(Hash64Test, Mix64DecorrelatesSequentialInputs) {
  // Low bits of the mix must not be sequential (std::hash<int64_t> is
  // the identity, the root cause of the HashPartition stripes).
  std::set<uint64_t> low;
  for (uint64_t i = 0; i < 64; ++i) low.insert(Mix64(i) & 0xff);
  EXPECT_GT(low.size(), 40u);  // identity mapping would give exactly 64 in order
  EXPECT_NE(Mix64(0), 0u);
  EXPECT_NE(Mix64(1), Mix64(0) + 1);
}

TEST(Hash64Test, RangeReduceCoversAllBucketsUniformly) {
  const uint32_t n = 7;
  std::vector<int> counts(n, 0);
  const int kKeys = 70000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[RangeReduce(Mix64(static_cast<uint64_t>(i)), n)];
  }
  const double expect = static_cast<double>(kKeys) / n;
  for (uint32_t p = 0; p < n; ++p) {
    EXPECT_NEAR(counts[p], expect, 0.2 * expect) << "partition " << p;
  }
}

// ---- KeyEncoder ------------------------------------------------------

TEST(KeyEncoderTest, CrossNumericTypeEqualityNormalizes) {
  // The Compare()==0 => equal-encoding contract of exec/value.cc.
  EXPECT_EQ(EncodeOne(Value(int64_t{3})), EncodeOne(Value(3.0)));
  EXPECT_EQ(EncodeOne(Value(int64_t{0})), EncodeOne(Value(-0.0)));
  EXPECT_EQ(EncodeOne(Value(int64_t{-7})), EncodeOne(Value(-7.0)));
  EXPECT_NE(EncodeOne(Value(3.5)), EncodeOne(Value(int64_t{3})));
  EXPECT_NE(EncodeOne(Value(3.5)), EncodeOne(Value(int64_t{4})));
  // Non-integral and huge doubles stay float-tagged.
  EXPECT_NE(EncodeOne(Value(1e300)), EncodeOne(Value(int64_t{0})));
  // NaN bit patterns canonicalize (NaN groups with NaN).
  const double qnan = std::nan("");
  const double other_nan = std::nan("0x123");
  EXPECT_EQ(EncodeOne(Value(qnan)), EncodeOne(Value(other_nan)));
}

TEST(KeyEncoderTest, EncodingMatchesValueEquality) {
  const std::vector<Value> vals = {
      Value::Null(),        Value(int64_t{0}),  Value(int64_t{3}),
      Value(int64_t{-3}),   Value(3.0),         Value(-0.0),
      Value(3.5),           Value(-3.0),        Value(""),
      Value("a"),           Value("ab"),        Value("3"),
      Value(int64_t{1} << 40), Value(1099511627776.0) /* 2^40 */};
  for (const Value& a : vals) {
    for (const Value& b : vals) {
      const bool val_eq = !a.is_null() && !b.is_null() && a.Compare(b) == 0;
      const bool enc_eq = EncodeOne(a) == EncodeOne(b);
      if (a.is_null() || b.is_null()) {
        EXPECT_EQ(enc_eq, a.is_null() && b.is_null());
      } else {
        EXPECT_EQ(val_eq, enc_eq)
            << a.ToString() << " vs " << b.ToString();
      }
      // Equal Compare implies equal Hash via the encoder too.
      if (val_eq) {
        EXPECT_EQ(KeyEncoder::HashEncoded(EncodeOne(a)),
                  KeyEncoder::HashEncoded(EncodeOne(b)));
      }
    }
  }
}

TEST(KeyEncoderTest, MultiColumnFramingIsInjective) {
  // Length prefixes keep column boundaries unambiguous.
  EXPECT_NE(EncodeRow({Value("ab"), Value("c")}),
            EncodeRow({Value("a"), Value("bc")}));
  EXPECT_NE(EncodeRow({Value("a"), Value::Null()}), EncodeRow({Value("a")}));
  EXPECT_NE(EncodeRow({Value::Null()}), EncodeRow({}));
  EXPECT_NE(EncodeRow({Value::Null(), Value::Null()}),
            EncodeRow({Value::Null()}));
  // A string whose bytes mimic an int64 encoding cannot collide with it
  // (different tag byte).
  std::string fake(8, '\0');
  EXPECT_NE(EncodeRow({Value(fake)}), EncodeRow({Value(int64_t{0})}));
}

TEST(KeyEncoderTest, NullPrefixByteSetsHasNull) {
  KeyEncoder enc;
  bool has_null = false;
  (void)enc.Encode({Value(int64_t{1}), Value::Null()}, &has_null);
  EXPECT_TRUE(has_null);
  (void)enc.Encode({Value(int64_t{1}), Value("x")}, &has_null);
  EXPECT_FALSE(has_null);
  (void)enc.Encode({}, &has_null);
  EXPECT_FALSE(has_null);
}

TEST(KeyEncoderTest, DecodeRoundTripsNormalizedValues) {
  const Row key = {Value::Null(), Value(int64_t{-42}), Value(2.5),
                   Value("hello"), Value("")};
  auto decoded = KeyEncoder::Decode(EncodeRow(key));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), key.size());
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (key[i].is_null()) {
      EXPECT_TRUE((*decoded)[i].is_null());
    } else {
      EXPECT_EQ(key[i].Compare((*decoded)[i]), 0);
    }
  }
  // Integral floats come back in normalized (int64) form.
  auto norm = KeyEncoder::Decode(EncodeRow({Value(3.0)}));
  ASSERT_TRUE(norm.ok());
  ASSERT_TRUE((*norm)[0].is_int64());
  EXPECT_EQ((*norm)[0].int64(), 3);
}

TEST(KeyEncoderTest, DecodeRejectsTruncatedInput) {
  const std::string enc = EncodeRow({Value(int64_t{7}), Value("abc")});
  for (std::size_t cut = 1; cut < enc.size(); ++cut) {
    auto r = KeyEncoder::Decode(std::string_view(enc).substr(0, cut));
    // Cuts at column boundaries still decode (fewer columns); any cut
    // inside a column must error, never crash or mis-read.
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsInvalidArgument());
    }
  }
  EXPECT_FALSE(KeyEncoder::Decode(std::string_view("\x09", 1)).ok());
}

// The column fast path (EncodeColumns / HashColumns) must be
// byte-for-byte / bit-for-bit the same function as evaluating the key
// row and calling Encode / HashNormalized.
TEST(KeyEncoderTest, ColumnFastPathMatchesEvaluatedPath) {
  const Row row = {Value(int64_t{42}), Value("abc"), Value::Null(),
                   Value(3.5),         Value(3.0),   Value(int64_t{-1})};
  const std::vector<std::vector<uint32_t>> picks = {
      {0}, {3}, {2}, {0, 5}, {1, 2, 4}, {5, 0}, {}};
  for (const auto& cols : picks) {
    Row key;
    for (const uint32_t c : cols) key.push_back(row[c]);

    KeyEncoder ref;
    bool ref_null = false;
    const std::string expect(ref.Encode(key, &ref_null));

    KeyEncoder enc;
    bool has_null = true;
    std::string_view got;
    ASSERT_TRUE(enc.EncodeColumns(row, cols, &got, &has_null));
    EXPECT_EQ(std::string(got), expect);
    EXPECT_EQ(has_null, ref_null);

    bool hn_null = false;
    const uint64_t expect_hash = KeyEncoder::HashNormalized(key, &hn_null);
    uint64_t hash = 0;
    bool hc_null = true;
    ASSERT_TRUE(KeyEncoder::HashColumns(row, cols, &hash, &hc_null));
    EXPECT_EQ(hash, expect_hash);
    EXPECT_EQ(hc_null, hn_null);
  }
}

TEST(KeyEncoderTest, ColumnFastPathRejectsNarrowRows) {
  const Row row = {Value(int64_t{1}), Value("s")};
  KeyEncoder enc;
  std::string_view out;
  uint64_t h = 0;
  bool has_null = false;
  EXPECT_FALSE(enc.EncodeColumns(row, {2}, &out, &has_null));
  EXPECT_FALSE(enc.EncodeColumns(row, {0, 7}, &out, &has_null));
  EXPECT_FALSE(KeyEncoder::HashColumns(row, {2}, &h, &has_null));
  EXPECT_TRUE(enc.EncodeColumns(row, {0, 1}, &out, &has_null));
}

TEST(KeyEncoderTest, ColumnOrdinalsResolvesPlainColumnsOnly) {
  const Schema schema({{"a", DataType::kInt64},
                       {"b", DataType::kString},
                       {"c", DataType::kFloat64}});
  std::vector<uint32_t> cols;

  auto plain = *BindAll({Expr::Column("c"), Expr::Column("a")}, schema);
  ASSERT_TRUE(KeyEncoder::ColumnOrdinals(plain, &cols));
  EXPECT_EQ(cols, (std::vector<uint32_t>{2, 0}));

  auto computed = *BindAll(
      {Expr::Column("a"),
       Expr::Binary(BinaryOp::kAdd, Expr::Column("a"), Expr::Literal(Value(int64_t{1})))},
      schema);
  EXPECT_FALSE(KeyEncoder::ColumnOrdinals(computed, &cols));

  auto literal = *BindAll({Expr::Literal(Value(int64_t{5}))}, schema);
  EXPECT_FALSE(KeyEncoder::ColumnOrdinals(literal, &cols));
}

// ---- FlatKeyTable ----------------------------------------------------

TEST(FlatKeyTableTest, InsertFindAndDenseOrder) {
  FlatKeyTable t;
  const std::vector<std::string> keys = {"alpha", "beta", "gamma", ""};
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto r = t.FindOrInsert(keys[i], Hash64(keys[i]));
    EXPECT_TRUE(r.inserted);
    EXPECT_EQ(r.index, i);  // dense ids in insertion order
  }
  EXPECT_EQ(t.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(t.Find(keys[i], Hash64(keys[i])), static_cast<int64_t>(i));
    EXPECT_EQ(t.key(static_cast<uint32_t>(i)), keys[i]);
    const auto r = t.FindOrInsert(keys[i], Hash64(keys[i]));
    EXPECT_FALSE(r.inserted);
    EXPECT_EQ(r.index, i);
  }
  EXPECT_EQ(t.Find("delta", Hash64(std::string_view("delta"))), -1);
}

TEST(FlatKeyTableTest, GrowthPreservesEveryKey) {
  FlatKeyTable t;  // starts at capacity 16: forces many doublings
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::string k = "key-" + std::to_string(i);
    const auto r = t.FindOrInsert(k, Hash64(k));
    ASSERT_TRUE(r.inserted) << i;
    ASSERT_EQ(r.index, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string k = "key-" + std::to_string(i);
    ASSERT_EQ(t.Find(k, Hash64(k)), i);
  }
}

TEST(FlatKeyTableTest, PreSizedTableDoesNotGrowUnderExpectedLoad) {
  FlatKeyTable t(10000);
  for (int i = 0; i < 10000; ++i) {
    const std::string k = std::to_string(i);
    t.FindOrInsert(k, Hash64(k));
  }
  EXPECT_EQ(t.size(), 10000u);
  for (int i = 0; i < 10000; ++i) {
    const std::string k = std::to_string(i);
    ASSERT_EQ(t.Find(k, Hash64(k)), i);
  }
}

TEST(FlatKeyTableTest, AdversarialSharedPrefixKeys) {
  // Long keys differing only in the last byte: tag-byte probing must
  // fall through to full memcmp and still distinguish them.
  FlatKeyTable t;
  const std::string prefix(512, 'x');
  for (int i = 0; i < 300; ++i) {
    const std::string k = prefix + static_cast<char>(i % 256) +
                          std::to_string(i / 256);
    const auto r = t.FindOrInsert(k, Hash64(k));
    ASSERT_TRUE(r.inserted);
  }
  EXPECT_EQ(t.size(), 300u);
}

TEST(FlatKeyTableTest, CollidingHashesDisambiguateByKeyBytes) {
  // Same (forged) hash for every key: linear probing + memcmp must keep
  // all entries distinct and findable.
  FlatKeyTable t;
  const uint64_t forged = 0x1234567812345678ULL;
  for (int i = 0; i < 64; ++i) {
    const std::string k = "k" + std::to_string(i);
    const auto r = t.FindOrInsert(k, forged);
    ASSERT_TRUE(r.inserted) << i;
  }
  for (int i = 0; i < 64; ++i) {
    const std::string k = "k" + std::to_string(i);
    ASSERT_EQ(t.Find(k, forged), i);
  }
  EXPECT_EQ(t.Find("k64", forged), -1);
}

// ---- KeyArena --------------------------------------------------------

TEST(KeyArenaTest, StoredViewsStayValidAcrossChunkGrowth) {
  KeyArena arena;
  std::vector<std::string_view> views;
  std::vector<std::string> originals;
  for (int i = 0; i < 2000; ++i) {
    originals.push_back(std::string(100, static_cast<char>('a' + i % 26)) +
                        std::to_string(i));
  }
  for (const std::string& s : originals) views.push_back(arena.Store(s));
  for (std::size_t i = 0; i < views.size(); ++i) {
    ASSERT_EQ(views[i], originals[i]) << i;
  }
  // An oversized store gets its own chunk.
  const std::string big(1 << 20, 'z');
  EXPECT_EQ(arena.Store(big), big);
}

// ---- HashPartition skew ---------------------------------------------

Batch IntKeyBatch(const std::vector<int64_t>& keys) {
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}});
  b.rows.reserve(keys.size());
  for (int64_t k : keys) b.rows.push_back({Value(k)});
  return b;
}

void ExpectUniformSpread(const Batch& batch, int num_partitions) {
  const std::vector<ExprPtr> keys = {Expr::Column("k")};
  auto parts = HashPartition(batch, keys, num_partitions);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), static_cast<std::size_t>(num_partitions));
  std::size_t total = 0;
  const double expect =
      static_cast<double>(batch.rows.size()) / num_partitions;
  for (int p = 0; p < num_partitions; ++p) {
    total += (*parts)[p].rows.size();
    EXPECT_NEAR((*parts)[p].rows.size(), expect, 0.2 * expect)
        << "partition " << p << " of " << num_partitions;
  }
  EXPECT_EQ(total, batch.rows.size());
}

TEST(HashPartitionSkewTest, SequentialKeysSpreadUniformly) {
  std::vector<int64_t> keys(7 * 16 * 100);  // 11200 keys
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(i);
  }
  const Batch b = IntKeyBatch(keys);
  ExpectUniformSpread(b, 7);
  ExpectUniformSpread(b, 16);
}

TEST(HashPartitionSkewTest, StridedKeysSpreadUniformly) {
  // Strides that divide the partition count are the classic stripe
  // pathology: identity-hash-mod-n sends every key to one partition.
  for (const int64_t stride : {7, 16, 1024}) {
    std::vector<int64_t> keys(11200);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = static_cast<int64_t>(i) * stride;
    }
    const Batch b = IntKeyBatch(keys);
    ExpectUniformSpread(b, 7);
    ExpectUniformSpread(b, 16);
  }
}

TEST(HashPartitionSkewTest, LegacyIdentityHashStripesOnStridedKeys) {
  // Documents the pathology the mixer fixes: HashRow (identity on
  // int64) mod 16 maps stride-16 keys to a single partition.
  std::set<std::size_t> used;
  for (int64_t i = 0; i < 1000; ++i) {
    used.insert(HashRow({Value(i * 16)}) % 16);
  }
  EXPECT_EQ(used.size(), 1u);
}

TEST(HashPartitionSkewTest, OverloadsAgreeAndNullsGoToPartitionZero) {
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}, {"v", DataType::kString}});
  for (int i = 0; i < 500; ++i) {
    b.rows.push_back({i % 10 == 0 ? Value::Null()
                                  : Value(static_cast<int64_t>(i * 16)),
                      Value("v" + std::to_string(i))});
  }
  const std::vector<ExprPtr> keys = {Expr::Column("k")};
  auto borrowed = HashPartition(b, keys, 7);
  ASSERT_TRUE(borrowed.ok());
  Batch moved_in = b;  // copy, then move into the owned overload
  auto owned = HashPartition(std::move(moved_in), keys, 7);
  ASSERT_TRUE(owned.ok());
  for (int p = 0; p < 7; ++p) {
    ASSERT_EQ((*borrowed)[p].rows.size(), (*owned)[p].rows.size()) << p;
    for (std::size_t i = 0; i < (*borrowed)[p].rows.size(); ++i) {
      const Row& a = (*borrowed)[p].rows[i];
      const Row& c = (*owned)[p].rows[i];
      ASSERT_EQ(a.size(), c.size());
      for (std::size_t j = 0; j < a.size(); ++j) {
        if (a[j].is_null()) {
          ASSERT_TRUE(c[j].is_null());
        } else {
          ASSERT_EQ(a[j].Compare(c[j]), 0);
        }
      }
    }
  }
  // Every NULL-keyed row landed in partition 0.
  std::size_t nulls_in_p0 = 0;
  for (const Row& r : (*borrowed)[0].rows) {
    if (r[0].is_null()) ++nulls_in_p0;
  }
  EXPECT_EQ(nulls_in_p0, 50u);
  for (int p = 1; p < 7; ++p) {
    for (const Row& r : (*borrowed)[p].rows) {
      EXPECT_FALSE(r[0].is_null());
    }
  }
}

}  // namespace
}  // namespace swift
