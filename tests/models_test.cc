// Property tests for the simulator cost models (sim/models.h).

#include "sim/models.h"

#include <gtest/gtest.h>

namespace swift {
namespace {

TEST(NetworkModelProps, ConnLatencyMonotoneInConnections) {
  NetworkModel net;
  double prev = 0.0;
  for (double c = 100; c <= 1e7; c *= 2) {
    const double lat = net.ConnLatency(c);
    EXPECT_GE(lat, prev);
    EXPECT_GE(lat, net.base_conn_latency);
    EXPECT_LE(lat, net.congested_conn_latency);
    prev = lat;
  }
}

TEST(NetworkModelProps, RetransMonotoneAndBounded) {
  NetworkModel net;
  double prev = 0.0;
  for (double c = 100; c <= 1e7; c *= 2) {
    const double r = net.RetransRate(ShuffleKind::kDirect, c);
    EXPECT_GE(r, prev);
    EXPECT_GE(r, net.base_retrans);
    EXPECT_LE(r, net.max_retrans);
    prev = r;
  }
}

TEST(NetworkModelProps, TransferTimeScalesWithBytes) {
  NetworkModel net;
  for (ShuffleKind k : {ShuffleKind::kDirect, ShuffleKind::kLocal,
                        ShuffleKind::kRemote}) {
    const double t1 = net.TransferTime(k, 1e9, 50, 50, 10);
    const double t2 = net.TransferTime(k, 2e9, 50, 50, 10);
    EXPECT_NEAR(t2 / t1, 2.0, 1e-9) << ShuffleKindToString(k);
  }
}

TEST(NetworkModelProps, MoreMachinesNeverSlower) {
  NetworkModel net;
  for (ShuffleKind k : {ShuffleKind::kLocal, ShuffleKind::kDirect}) {
    const double few = net.TransferTime(k, 10e9, 100, 100, 4);
    const double many = net.TransferTime(k, 10e9, 100, 100, 40);
    EXPECT_LE(many, few) << ShuffleKindToString(k);
  }
}

TEST(NetworkModelProps, ExtraCopiesOrderLocalRemoteDirect) {
  // With identical shapes, transfer cost ordering follows copy counts
  // when connection effects are negligible (small shuffle).
  NetworkModel net;
  const double d = net.TransferTime(ShuffleKind::kDirect, 5e9, 10, 10, 4);
  const double r = net.TransferTime(ShuffleKind::kRemote, 5e9, 10, 10, 4);
  const double l = net.TransferTime(ShuffleKind::kLocal, 5e9, 10, 10, 4);
  EXPECT_LT(d, r);
  EXPECT_LT(r, l);
}

TEST(DiskModelProps, SeekTermSuperlinear) {
  DiskModel disk;
  const double t1m = disk.WriteTime(0, 1000000, 10);
  const double t4m = disk.WriteTime(0, 4000000, 10);
  // 4x the partitions must cost more than 4x (superlinear onset at 4M).
  EXPECT_GT(t4m, 4.0 * t1m);
}

TEST(DiskModelProps, ReadAndWriteScaleWithBytes) {
  DiskModel disk;
  EXPECT_NEAR(disk.WriteTime(2e9, 0, 10) / disk.WriteTime(1e9, 0, 10), 2.0,
              1e-9);
  EXPECT_NEAR(disk.ReadTime(2e9, 0, 10) / disk.ReadTime(1e9, 0, 10), 2.0,
              1e-9);
}

TEST(DiskModelProps, SinkWriteFasterThanShuffleWrite) {
  // Sequential output write beats seek-bound shuffle write for the same
  // volume with many partitions.
  DiskModel disk;
  EXPECT_LT(disk.SinkWriteTime(50e9, 100),
            disk.WriteTime(50e9, 62500, 100));
}

TEST(TaskModelProps, ProcessTimeAffineInBytes) {
  TaskModel task;
  const double t0 = task.ProcessTime(0, 1.0);
  EXPECT_DOUBLE_EQ(t0, task.task_overhead);
  const double t1 = task.ProcessTime(task.process_rate, 1.0);
  EXPECT_NEAR(t1 - t0, 1.0, 1e-9);
  // cpu_cost_factor scales the work linearly.
  EXPECT_NEAR(task.ProcessTime(task.process_rate, 2.0) - t0, 2.0, 1e-9);
}

class ConnectionFormulaSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConnectionFormulaSweep, PaperOrderingHoldsAtScale) {
  const auto [m, n, y] = GetParam();
  // Sec. III-B claims local < remote < direct connection counts once M
  // and N are much larger than Y.
  const int64_t direct = DirectShuffleConnections(m, n);
  const int64_t remote = RemoteShuffleConnections(m, n, y);
  const int64_t local = LocalShuffleConnections(m, n, y);
  if (m > 4 * y && n > 4 * y) {
    EXPECT_LT(local, remote);
    EXPECT_LT(remote, direct);
  }
  EXPECT_GT(direct, 0);
  EXPECT_GT(remote, 0);
  EXPECT_GT(local, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConnectionFormulaSweep,
    ::testing::Values(std::make_tuple(100, 100, 10),
                      std::make_tuple(250, 250, 10),
                      std::make_tuple(500, 1000, 20),
                      std::make_tuple(1500, 1500, 100),
                      std::make_tuple(956, 220, 50),
                      std::make_tuple(50, 50, 10)));

class SetupTimeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SetupTimeSweep, SetupGrowsWithFanout) {
  NetworkModel net;
  const int n = GetParam();
  const double t1 =
      net.ConnectionSetupTime(ShuffleKind::kDirect, 100, n, 20);
  const double t2 =
      net.ConnectionSetupTime(ShuffleKind::kDirect, 100, 2 * n, 20);
  EXPECT_GT(t2, t1);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, SetupTimeSweep,
                         ::testing::Values(10, 100, 500, 1000));

}  // namespace
}  // namespace swift
