// Standing perf gate (ctest label perf_guard): TPC-H at a larger scale
// factor than the correctness suites, forced onto the compressed Remote
// path, plus codec-throughput floors on real TPC-H shuffle payloads.
// Guards catch order-of-magnitude regressions (a quadratic match loop,
// an accidental copy per block), so the floors sit well under the
// steady-state numbers in EXPERIMENTS.md; timing is best-of-N against
// scheduler noise. Skipped under sanitizers — instrumentation distorts
// byte-level codec cost by an order of magnitude.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>

#include "common/compress.h"
#include "exec/serde.h"
#include "exec/tpch.h"
#include "runtime/local_runtime.h"

namespace swift {
namespace {

#if defined(SWIFT_SANITIZED)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

constexpr int kTrials = 5;

template <typename Fn>
double BestSeconds(Fn&& fn) {
  double best = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// A real shuffle payload: serialized TPC-H lineitem rows, the same
// bytes the compressed Remote path frames in production.
std::string LineitemWire(double scale_factor) {
  TpchConfig cfg;
  cfg.scale_factor = scale_factor;
  auto table = TpchLineitem(cfg);
  Batch b;
  b.schema = table->schema;
  b.rows = table->rows;
  return SerializeBatch(b);
}

TEST(TpchPerfGuardTest, CodecThroughputFloorsOnTpchPayload) {
  if (kSanitized) GTEST_SKIP() << "codec timing meaningless under sanitizers";
  const std::string wire = LineitemWire(0.01);
  ASSERT_GT(wire.size(), 4u << 20) << "payload too small to time";

  std::string frame;
  const double comp_s = BestSeconds([&] { frame = CompressFrame(wire); });
  ASSERT_LT(frame.size(), wire.size());
  std::string back;
  const double decomp_s = BestSeconds([&] {
    auto r = DecompressFrame(frame);
    ASSERT_TRUE(r.ok());
    back = std::move(*r);
  });
  ASSERT_EQ(back, wire);

  const double mb = static_cast<double>(wire.size()) / (1024.0 * 1024.0);
  const double comp_mbs = mb / comp_s;
  const double decomp_mbs = mb / decomp_s;
  // Regression floors (steady-state numbers live in EXPERIMENTS.md /
  // BENCH_PR10.json; these fire on a real slowdown, not timer jitter).
  EXPECT_GE(comp_mbs, 150.0) << "compress fell to " << comp_mbs << " MB/s";
  EXPECT_GE(decomp_mbs, 500.0) << "decompress fell to " << decomp_mbs
                               << " MB/s";
  // The plane only pays for frames that win; TPC-H payloads must keep
  // winning big or the ≥30% byte-savings acceptance dies silently.
  EXPECT_LE(frame.size(), (wire.size() * 7) / 10);
}

TEST(TpchPerfGuardTest, LargerScaleTpchOverCompressedRemotePath) {
  // 5x the scale factor of the correctness suites; every edge Remote,
  // compression on — the configuration the byte-savings acceptance
  // measures, kept alive as a ctest-visible gate.
  LocalRuntimeConfig cfg;
  cfg.force_shuffle_kind = ShuffleKind::kRemote;
  LocalRuntime rt(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.01;
  ASSERT_TRUE(GenerateTpch(tpch, rt.catalog()).ok());

  const auto t0 = std::chrono::steady_clock::now();
  auto report = rt.RunSql(
      "SELECT l_orderkey, l_linenumber, l_extendedprice, l_shipdate, "
      "l_shipmode FROM tpch_lineitem ORDER BY l_orderkey, l_linenumber");
  const auto t1 = std::chrono::steady_clock::now();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->result.num_rows(), 0u);
  EXPECT_GT(report->stats.shuffle.compressed_writes, 0);
  EXPECT_GT(report->stats.decompressed_frames, 0);
  EXPECT_LT(report->stats.shuffle.compress_bytes_out,
            report->stats.shuffle.compress_bytes_in);
  if (!kSanitized) {
    // Loose wall ceiling: this query ran in well under a tenth of this
    // on the reference container; only a gross regression trips it.
    EXPECT_LT(std::chrono::duration<double>(t1 - t0).count(), 120.0);
  }
}

}  // namespace
}  // namespace swift
