#include "exec/operators.h"

#include <gtest/gtest.h>

#include <set>

namespace swift {
namespace {

Schema KV() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kString}});
}

OperatorPtr SourceOf(Schema schema, std::vector<Row> rows) {
  Batch b;
  b.schema = schema;
  b.rows = std::move(rows);
  std::vector<Batch> batches;
  batches.push_back(std::move(b));
  return MakeBatchSource(std::move(schema), std::move(batches));
}

Batch Collect(OperatorPtr op) {
  auto r = CollectAll(op.get());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *std::move(r) : Batch{};
}

TEST(OperatorsTest, BatchSourceEmitsAll) {
  Batch out = Collect(SourceOf(KV(), {{Value(int64_t{1}), Value("a")},
                                      {Value(int64_t{2}), Value("b")}}));
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.schema, KV());
}

TEST(OperatorsTest, FilterKeepsMatchingRows) {
  auto pred = Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                           Expr::Literal(Value(int64_t{1})));
  Batch out = Collect(MakeFilter(
      SourceOf(KV(), {{Value(int64_t{1}), Value("a")},
                      {Value(int64_t{2}), Value("b")},
                      {Value(int64_t{3}), Value("c")}}),
      pred));
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.rows[0][1].str(), "b");
  EXPECT_EQ(out.rows[1][1].str(), "c");
}

TEST(OperatorsTest, FilterAllRowsOut) {
  auto pred = Expr::Literal(Value(int64_t{0}));
  Batch out = Collect(MakeFilter(
      SourceOf(KV(), {{Value(int64_t{1}), Value("a")}}), pred));
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(OperatorsTest, ProjectComputesAndRenames) {
  auto doubled = Expr::Binary(BinaryOp::kMul, Expr::Column("k"),
                              Expr::Literal(Value(int64_t{2})));
  Batch out = Collect(MakeProject(
      SourceOf(KV(), {{Value(int64_t{5}), Value("z")}}), {doubled},
      {"k2"}));
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.schema.field(0).name, "k2");
  EXPECT_EQ(out.rows[0][0].int64(), 10);
}

TEST(OperatorsTest, ProjectArityMismatchRejected) {
  auto op = MakeProject(SourceOf(KV(), {}), {Expr::Column("k")}, {});
  EXPECT_FALSE(op->Open().ok());
}

TEST(OperatorsTest, LimitTruncates) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 10; ++i) rows.push_back({Value(i), Value("x")});
  Batch out = Collect(MakeLimit(SourceOf(KV(), rows), 3));
  EXPECT_EQ(out.num_rows(), 3u);
  Batch all = Collect(MakeLimit(SourceOf(KV(), rows), 100));
  EXPECT_EQ(all.num_rows(), 10u);
  Batch none = Collect(MakeLimit(SourceOf(KV(), rows), 0));
  EXPECT_EQ(none.num_rows(), 0u);
}

TEST(OperatorsTest, SortAscendingDescending) {
  std::vector<Row> rows = {{Value(int64_t{3}), Value("c")},
                           {Value(int64_t{1}), Value("a")},
                           {Value(int64_t{2}), Value("b")}};
  Batch asc = Collect(
      MakeSort(SourceOf(KV(), rows), {SortKey{Expr::Column("k"), true}}));
  EXPECT_EQ(asc.rows[0][0].int64(), 1);
  EXPECT_EQ(asc.rows[2][0].int64(), 3);
  Batch desc = Collect(
      MakeSort(SourceOf(KV(), rows), {SortKey{Expr::Column("k"), false}}));
  EXPECT_EQ(desc.rows[0][0].int64(), 3);
}

TEST(OperatorsTest, SortIsStable) {
  Schema s({{"k", DataType::kInt64}, {"seq", DataType::kInt64}});
  std::vector<Row> rows;
  for (int64_t i = 0; i < 6; ++i) rows.push_back({Value(i % 2), Value(i)});
  Batch out =
      Collect(MakeSort(SourceOf(s, rows), {SortKey{Expr::Column("k"), true}}));
  ASSERT_EQ(out.num_rows(), 6u);
  // Equal keys retain input order.
  EXPECT_EQ(out.rows[0][1].int64(), 0);
  EXPECT_EQ(out.rows[1][1].int64(), 2);
  EXPECT_EQ(out.rows[2][1].int64(), 4);
}

TEST(OperatorsTest, SortMultiKey) {
  Schema s({{"a", DataType::kString}, {"b", DataType::kInt64}});
  std::vector<Row> rows = {{Value("y"), Value(int64_t{1})},
                           {Value("x"), Value(int64_t{2})},
                           {Value("x"), Value(int64_t{9})}};
  Batch out = Collect(MakeSort(SourceOf(s, rows),
                               {SortKey{Expr::Column("a"), true},
                                SortKey{Expr::Column("b"), false}}));
  EXPECT_EQ(out.rows[0][0].str(), "x");
  EXPECT_EQ(out.rows[0][1].int64(), 9);
  EXPECT_EQ(out.rows[2][0].str(), "y");
}

OperatorPtr LeftTable() {
  Schema s({{"lk", DataType::kInt64}, {"lv", DataType::kString}});
  return SourceOf(s, {{Value(int64_t{1}), Value("a")},
                      {Value(int64_t{2}), Value("b")},
                      {Value(int64_t{2}), Value("b2")},
                      {Value(int64_t{4}), Value("d")},
                      {Value::Null(), Value("n")}});
}

OperatorPtr RightTable() {
  Schema s({{"rk", DataType::kInt64}, {"rv", DataType::kString}});
  return SourceOf(s, {{Value(int64_t{2}), Value("B")},
                      {Value(int64_t{2}), Value("B2")},
                      {Value(int64_t{3}), Value("C")},
                      {Value::Null(), Value("N")}});
}

TEST(OperatorsTest, HashJoinInnerSemantics) {
  Batch out = Collect(MakeHashJoin(LeftTable(), RightTable(),
                                   {Expr::Column("lk")}, {Expr::Column("rk")}));
  // key 2: 2 left x 2 right = 4 matches; NULL keys never join.
  EXPECT_EQ(out.num_rows(), 4u);
  EXPECT_EQ(out.schema.num_fields(), 4u);
  for (const Row& r : out.rows) {
    EXPECT_EQ(r[0].int64(), 2);
    EXPECT_EQ(r[2].int64(), 2);
  }
}

TEST(OperatorsTest, MergeJoinMatchesHashJoin) {
  auto sorted_left = MakeSort(LeftTable(), {SortKey{Expr::Column("lk"), true}});
  auto sorted_right =
      MakeSort(RightTable(), {SortKey{Expr::Column("rk"), true}});
  Batch out =
      Collect(MakeMergeJoin(std::move(sorted_left), std::move(sorted_right),
                            {Expr::Column("lk")}, {Expr::Column("rk")}));
  EXPECT_EQ(out.num_rows(), 4u);
  for (const Row& r : out.rows) EXPECT_EQ(r[0].int64(), r[2].int64());
}

TEST(OperatorsTest, MergeJoinRejectsUnsortedInput) {
  auto op = MakeMergeJoin(LeftTable(), RightTable(), {Expr::Column("lk")},
                          {Expr::Column("rk")});
  // LeftTable has NULL last, which sorts first -> not sorted. The check
  // runs when the (lazily built) join first drains its inputs.
  ASSERT_TRUE(op->Open().ok());
  EXPECT_FALSE(op->Next().ok());

  auto cop = MakeMergeJoin(LeftTable(), RightTable(), {Expr::Column("lk")},
                           {Expr::Column("rk")});
  ASSERT_TRUE(cop->Open().ok());
  EXPECT_FALSE(cop->NextColumnar().ok());
}

TEST(OperatorsTest, JoinKeyArityMismatchRejected) {
  auto op = MakeHashJoin(LeftTable(), RightTable(),
                         {Expr::Column("lk"), Expr::Column("lv")},
                         {Expr::Column("rk")});
  EXPECT_FALSE(op->Open().ok());
}

Schema SalesSchema() {
  return Schema({{"region", DataType::kString},
                 {"amount", DataType::kFloat64},
                 {"units", DataType::kInt64}});
}

std::vector<Row> SalesRows() {
  return {{Value("east"), Value(10.0), Value(int64_t{1})},
          {Value("west"), Value(20.0), Value(int64_t{2})},
          {Value("east"), Value(30.0), Value(int64_t{3})},
          {Value("west"), Value::Null(), Value(int64_t{4})}};
}

std::vector<AggSpec> SalesAggs() {
  return {AggSpec{AggKind::kSum, Expr::Column("amount"), "total"},
          AggSpec{AggKind::kCount, nullptr, "n"},
          AggSpec{AggKind::kMin, Expr::Column("amount"), "lo"},
          AggSpec{AggKind::kMax, Expr::Column("amount"), "hi"},
          AggSpec{AggKind::kAvg, Expr::Column("amount"), "mean"}};
}

TEST(OperatorsTest, HashAggregateGroups) {
  Batch out = Collect(MakeHashAggregate(SourceOf(SalesSchema(), SalesRows()),
                                        {Expr::Column("region")}, {"region"},
                                        SalesAggs()));
  ASSERT_EQ(out.num_rows(), 2u);
  // First-seen order: east then west.
  EXPECT_EQ(out.rows[0][0].str(), "east");
  EXPECT_DOUBLE_EQ(out.rows[0][1].AsDouble(), 40.0);
  EXPECT_EQ(out.rows[0][2].int64(), 2);  // COUNT(*)
  EXPECT_DOUBLE_EQ(out.rows[0][3].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(out.rows[0][4].AsDouble(), 30.0);
  EXPECT_DOUBLE_EQ(out.rows[0][5].float64(), 20.0);
  // west: SUM skips the NULL; COUNT(*) still 2; AVG over one value.
  EXPECT_DOUBLE_EQ(out.rows[1][1].AsDouble(), 20.0);
  EXPECT_EQ(out.rows[1][2].int64(), 2);
  EXPECT_DOUBLE_EQ(out.rows[1][5].float64(), 20.0);
}

TEST(OperatorsTest, GlobalAggregateOnEmptyInput) {
  Batch out = Collect(MakeHashAggregate(
      SourceOf(SalesSchema(), {}), {}, {},
      {AggSpec{AggKind::kCount, nullptr, "n"},
       AggSpec{AggKind::kSum, Expr::Column("amount"), "total"}}));
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.rows[0][0].int64(), 0);
  EXPECT_TRUE(out.rows[0][1].is_null());
}

TEST(OperatorsTest, CountColumnSkipsNulls) {
  Batch out = Collect(MakeHashAggregate(
      SourceOf(SalesSchema(), SalesRows()), {}, {},
      {AggSpec{AggKind::kCount, Expr::Column("amount"), "n_amount"},
       AggSpec{AggKind::kCount, nullptr, "n_star"}}));
  ASSERT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(out.rows[0][0].int64(), 3);
  EXPECT_EQ(out.rows[0][1].int64(), 4);
}

TEST(OperatorsTest, SumOfIntsStaysInt) {
  Schema s({{"x", DataType::kInt64}});
  Batch out = Collect(MakeHashAggregate(
      SourceOf(s, {{Value(int64_t{2})}, {Value(int64_t{3})}}), {}, {},
      {AggSpec{AggKind::kSum, Expr::Column("x"), "sx"}}));
  ASSERT_EQ(out.num_rows(), 1u);
  ASSERT_TRUE(out.rows[0][0].is_int64());
  EXPECT_EQ(out.rows[0][0].int64(), 5);
}

TEST(OperatorsTest, StreamedAggregateMatchesHashOnSortedInput) {
  auto sorted = MakeSort(SourceOf(SalesSchema(), SalesRows()),
                         {SortKey{Expr::Column("region"), true}});
  Batch streamed = Collect(MakeStreamedAggregate(
      std::move(sorted), {Expr::Column("region")}, {"region"}, SalesAggs()));
  ASSERT_EQ(streamed.num_rows(), 2u);
  EXPECT_EQ(streamed.rows[0][0].str(), "east");
  EXPECT_DOUBLE_EQ(streamed.rows[0][1].AsDouble(), 40.0);
  EXPECT_EQ(streamed.rows[1][0].str(), "west");
  EXPECT_DOUBLE_EQ(streamed.rows[1][1].AsDouble(), 20.0);
}

TEST(OperatorsTest, StreamedAggregateRejectsUnsortedInput) {
  std::vector<Row> rows = {{Value("b"), Value(1.0), Value(int64_t{1})},
                           {Value("a"), Value(1.0), Value(int64_t{1})}};
  auto op = MakeStreamedAggregate(SourceOf(SalesSchema(), rows),
                                  {Expr::Column("region")}, {"region"},
                                  {AggSpec{AggKind::kCount, nullptr, "n"}});
  EXPECT_FALSE(op->Open().ok());
}

TEST(OperatorsTest, WindowRowNumberAndRank) {
  Schema s({{"g", DataType::kString}, {"x", DataType::kInt64}});
  std::vector<Row> rows = {{Value("a"), Value(int64_t{10})},
                           {Value("a"), Value(int64_t{10})},
                           {Value("a"), Value(int64_t{20})},
                           {Value("b"), Value(int64_t{5})}};
  Batch rn = Collect(MakeWindow(SourceOf(s, rows), {Expr::Column("g")},
                                {SortKey{Expr::Column("x"), true}},
                                WindowFunc::kRowNumber, nullptr, "rn"));
  ASSERT_EQ(rn.num_rows(), 4u);
  EXPECT_EQ(rn.rows[0][2].int64(), 1);
  EXPECT_EQ(rn.rows[1][2].int64(), 2);
  EXPECT_EQ(rn.rows[2][2].int64(), 3);
  EXPECT_EQ(rn.rows[3][2].int64(), 1);  // new partition

  Batch rk = Collect(MakeWindow(SourceOf(s, rows), {Expr::Column("g")},
                                {SortKey{Expr::Column("x"), true}},
                                WindowFunc::kRank, nullptr, "rk"));
  EXPECT_EQ(rk.rows[0][2].int64(), 1);
  EXPECT_EQ(rk.rows[1][2].int64(), 1);  // tie keeps rank
  EXPECT_EQ(rk.rows[2][2].int64(), 3);
}

TEST(OperatorsTest, WindowRunningSum) {
  Schema s({{"g", DataType::kString}, {"x", DataType::kInt64}});
  std::vector<Row> rows = {{Value("a"), Value(int64_t{1})},
                           {Value("a"), Value(int64_t{2})},
                           {Value("a"), Value(int64_t{3})}};
  Batch out = Collect(MakeWindow(SourceOf(s, rows), {Expr::Column("g")},
                                 {SortKey{Expr::Column("x"), true}},
                                 WindowFunc::kSum, Expr::Column("x"), "cum"));
  EXPECT_DOUBLE_EQ(out.rows[0][2].float64(), 1.0);
  EXPECT_DOUBLE_EQ(out.rows[1][2].float64(), 3.0);
  EXPECT_DOUBLE_EQ(out.rows[2][2].float64(), 6.0);
}

TEST(OperatorsTest, HashPartitionIsDeterministicAndComplete) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 100; ++i) rows.push_back({Value(i), Value("v")});
  Batch b;
  b.schema = KV();
  b.rows = rows;
  auto parts = HashPartition(b, {Expr::Column("k")}, 7);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 7u);
  std::size_t total = 0;
  for (const Batch& p : *parts) total += p.num_rows();
  EXPECT_EQ(total, 100u);
  // Same key -> same partition on a second run.
  auto parts2 = HashPartition(b, {Expr::Column("k")}, 7);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ((*parts)[i].num_rows(), (*parts2)[i].num_rows());
  }
}

TEST(OperatorsTest, HashPartitionNullKeyGoesToZero) {
  Batch b;
  b.schema = KV();
  b.rows = {{Value::Null(), Value("n")}};
  auto parts = HashPartition(b, {Expr::Column("k")}, 4);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ((*parts)[0].num_rows(), 1u);
}

TEST(OperatorsTest, HashPartitionRejectsBadCount) {
  Batch b;
  b.schema = KV();
  EXPECT_FALSE(HashPartition(b, {Expr::Column("k")}, 0).ok());
}

TEST(OperatorsTest, IsSortedDetects) {
  Schema s({{"x", DataType::kInt64}});
  std::vector<Row> sorted = {{Value(int64_t{1})}, {Value(int64_t{2})}};
  std::vector<Row> unsorted = {{Value(int64_t{2})}, {Value(int64_t{1})}};
  EXPECT_TRUE(*IsSorted(s, sorted, {SortKey{Expr::Column("x"), true}}));
  EXPECT_FALSE(*IsSorted(s, unsorted, {SortKey{Expr::Column("x"), true}}));
  EXPECT_TRUE(*IsSorted(s, unsorted, {SortKey{Expr::Column("x"), false}}));
}

TEST(OperatorsTest, PipelinedChainFilterProjectSortLimit) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < 2000; ++i) {  // spans multiple internal batches
    rows.push_back({Value(i), Value("v" + std::to_string(i))});
  }
  auto pred = Expr::Binary(BinaryOp::kGe, Expr::Column("k"),
                           Expr::Literal(Value(int64_t{1000})));
  auto chain = MakeLimit(
      MakeSort(MakeProject(MakeFilter(SourceOf(KV(), rows), pred),
                           {Expr::Column("k")}, {"k"}),
               {SortKey{Expr::Column("k"), false}}),
      5);
  Batch out = Collect(std::move(chain));
  ASSERT_EQ(out.num_rows(), 5u);
  EXPECT_EQ(out.rows[0][0].int64(), 1999);
  EXPECT_EQ(out.rows[4][0].int64(), 1995);
}

}  // namespace
}  // namespace swift
