#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/json.h"

namespace swift {
namespace obs {
namespace {

TEST(MetricsTest, CounterAccumulates) {
  MetricsRegistry reg;
  Counter* c = reg.counter("x");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  EXPECT_EQ(reg.CounterValue("x"), 42);
  EXPECT_EQ(reg.CounterValue("never-registered"), 0);
}

TEST(MetricsTest, HandleIsStableAcrossLookups) {
  MetricsRegistry reg;
  Counter* a = reg.counter("same");
  // Force rebalancing pressure on the name map.
  for (int i = 0; i < 100; ++i) {
    reg.counter("other" + std::to_string(i));
  }
  EXPECT_EQ(reg.counter("same"), a);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.gauge("ratio");
  g->Set(0.25);
  g->Set(0.75);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("ratio"), 0.75);
}

TEST(MetricsTest, HistogramBucketsClampAndDropNaN) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.histogram("lat", 0.0, 10.0, 10);
  h->Record(-5.0);                                      // clamps to bucket 0
  h->Record(3.5);                                       // bucket 3
  h->Record(99.0);                                      // clamps to bucket 9
  h->Record(std::numeric_limits<double>::quiet_NaN());  // dropped
  HistogramSnapshot s = reg.HistogramValue("lat");
  ASSERT_EQ(s.buckets.size(), 10u);
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.buckets[0], 1);
  EXPECT_EQ(s.buckets[3], 1);
  EXPECT_EQ(s.buckets[9], 1);
  EXPECT_DOUBLE_EQ(s.min, -5.0);
  EXPECT_DOUBLE_EQ(s.max, 99.0);
  EXPECT_DOUBLE_EQ(s.sum, 97.5);
}

TEST(MetricsTest, HistogramDegenerateShapes) {
  MetricsRegistry reg;
  HistogramMetric* none = reg.histogram("no-bins", 0.0, 1.0, 0);
  none->Record(0.5);
  EXPECT_TRUE(reg.HistogramValue("no-bins").buckets.empty());
  EXPECT_EQ(reg.HistogramValue("no-bins").count, 1);

  HistogramMetric* flipped = reg.histogram("flipped", 9.0, 1.0, 4);
  flipped->Record(5.0);
  HistogramSnapshot s = reg.HistogramValue("flipped");
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 1);  // everything lands in bucket 0
}

TEST(MetricsTest, SeriesKeepsExactSamples) {
  MetricsRegistry reg;
  Series* s = reg.series("per-job");
  s->Record(1.5);
  s->Record(-2.5);
  EXPECT_EQ(s->count(), 2);
  EXPECT_DOUBLE_EQ(s->sum(), -1.0);
  std::vector<double> v = reg.SeriesValue("per-job");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  EXPECT_DOUBLE_EQ(v[1], -2.5);
}

TEST(MetricsTest, NullSafeHelpersAreNoOps) {
  Add(static_cast<Counter*>(nullptr));
  Add(static_cast<Counter*>(nullptr), 7);
  Set(nullptr, 1.0);
  Record(static_cast<HistogramMetric*>(nullptr), 1.0);
  Record(static_cast<Series*>(nullptr), 1.0);
}

TEST(MetricsTest, SnapshotAndJsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("c")->Add(3);
  reg.gauge("g")->Set(0.5);
  reg.histogram("h", 0.0, 4.0, 4)->Record(1.0);
  reg.series("s")->Record(2.0);

  MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c"), 3);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 0.5);
  EXPECT_EQ(snap.histograms.at("h").count, 1);
  EXPECT_EQ(snap.series.at("s").size(), 1u);

  Result<JsonValue> parsed = ParseJson(reg.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Get("counters").Get("c").AsInt(), 3);
  EXPECT_DOUBLE_EQ(parsed->Get("gauges").Get("g").AsNumber(), 0.5);
  EXPECT_EQ(parsed->Get("histograms").Get("h").Get("count").AsInt(), 1);
  EXPECT_EQ(parsed->Get("series").Get("s").size(), 1u);
}

TEST(JsonTest, ParsesEscapesAndRejectsGarbage) {
  Result<JsonValue> v = ParseJson(R"({"a":"x\nA","b":[1,2.5,true,null]})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Get("a").AsString(), "x\nA");
  EXPECT_EQ(v->Get("b").size(), 4u);
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("{broken").ok());
}

}  // namespace
}  // namespace obs
}  // namespace swift
