// Property tests: random batches must round-trip through both shuffle
// wire formats byte-exactly, and corrupt input (truncations, byte
// flips, random garbage) must never crash or OOM the decoder. The v2
// format carries a CRC32 footer, so any byte flip past the magic must
// come back as IOError; v1 has no checksum, so flips there only have
// to fail safely (error or decodable batch, never a crash).

#include <gtest/gtest.h>

#include "common/compress.h"
#include "common/rng.h"
#include "exec/serde.h"

namespace swift {
namespace {

Batch RandomBatch(uint64_t seed) {
  Rng rng(seed);
  const int ncols = static_cast<int>(rng.UniformInt(1, 6));
  std::vector<Field> fields;
  for (int c = 0; c < ncols; ++c) {
    fields.push_back(Field{
        "c" + std::to_string(c),
        static_cast<DataType>(rng.UniformInt(0, 3))});
  }
  Batch b;
  b.schema = Schema(std::move(fields));
  const int nrows = static_cast<int>(rng.UniformInt(0, 200));
  for (int r = 0; r < nrows; ++r) {
    Row row;
    for (int c = 0; c < ncols; ++c) {
      switch (rng.UniformInt(0, 3)) {
        case 0:
          row.push_back(Value::Null());
          break;
        case 1:
          row.push_back(Value(static_cast<int64_t>(rng.Next())));
          break;
        case 2:
          row.push_back(Value(rng.Uniform(-1e12, 1e12)));
          break;
        default: {
          std::string s(static_cast<std::size_t>(rng.UniformInt(0, 64)),
                        'x');
          for (char& ch : s) {
            ch = static_cast<char>(rng.UniformInt(0, 255));
          }
          row.push_back(Value(std::move(s)));
        }
      }
    }
    b.rows.push_back(std::move(row));
  }
  return b;
}

class SerdePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdePropertyTest, RoundTripExact) {
  Batch b = RandomBatch(GetParam());
  const std::string bytes = SerializeBatch(b);
  EXPECT_EQ(bytes.size(), SerializedBatchSize(b));
  auto back = DeserializeBatch(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->schema, b.schema);
  ASSERT_EQ(back->num_rows(), b.num_rows());
  for (std::size_t r = 0; r < b.rows.size(); ++r) {
    for (std::size_t c = 0; c < b.rows[r].size(); ++c) {
      EXPECT_EQ(back->rows[r][c].type(), b.rows[r][c].type());
      EXPECT_EQ(back->rows[r][c].Compare(b.rows[r][c]), 0);
    }
  }
  // Serialization is deterministic.
  EXPECT_EQ(SerializeBatch(*back), bytes);
}

TEST_P(SerdePropertyTest, SingleByteCorruptionNeverCrashes) {
  Batch b = RandomBatch(GetParam());
  const std::string bytes = SerializeBatch(b);
  if (bytes.empty()) return;
  Rng rng(GetParam() ^ 0xC0FFEE);
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = bytes;
    const std::size_t pos = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 + rng.UniformInt(0, 254)));
    auto result = DeserializeBatch(corrupt);  // must not crash or hang
    (void)result;
  }
}

TEST_P(SerdePropertyTest, TruncationAlwaysErrors) {
  Batch b = RandomBatch(GetParam());
  for (const std::string& bytes : {SerializeBatch(b), SerializeBatchV1(b)}) {
    Rng rng(GetParam() ^ 0xBEEF);
    for (int trial = 0; trial < 16; ++trial) {
      const std::size_t cut = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
      EXPECT_FALSE(DeserializeBatch(bytes.substr(0, cut)).ok())
          << "cut at " << cut << " of " << bytes.size();
    }
  }
}

TEST_P(SerdePropertyTest, RoundTripExactV1) {
  Batch b = RandomBatch(GetParam());
  const std::string bytes = SerializeBatchV1(b);
  EXPECT_EQ(bytes.size(), SerializedBatchSizeV1(b));
  auto back = DeserializeBatch(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->schema, b.schema);
  ASSERT_EQ(back->num_rows(), b.num_rows());
  for (std::size_t r = 0; r < b.rows.size(); ++r) {
    for (std::size_t c = 0; c < b.rows[r].size(); ++c) {
      EXPECT_EQ(back->rows[r][c].type(), b.rows[r][c].type());
      EXPECT_EQ(back->rows[r][c].Compare(b.rows[r][c]), 0);
    }
  }
  EXPECT_EQ(SerializeBatchV1(*back), bytes);
}

TEST_P(SerdePropertyTest, V1SingleByteCorruptionNeverCrashes) {
  Batch b = RandomBatch(GetParam());
  const std::string bytes = SerializeBatchV1(b);
  Rng rng(GetParam() ^ 0xF00D);
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = bytes;
    const std::size_t pos = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(bytes.size()) - 1));
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 + rng.UniformInt(0, 254)));
    auto result = DeserializeBatch(corrupt);  // must not crash or OOM
    (void)result;
  }
}

TEST_P(SerdePropertyTest, V2ByteFlipAlwaysIOError) {
  Batch b = RandomBatch(GetParam());
  const std::string bytes = SerializeBatch(b);
  Rng rng(GetParam() ^ 0xD00F);
  // Any flip past the 4-byte magic leaves the buffer on the v2 decode
  // path, where the CRC32 footer must reject it before parsing.
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = bytes;
    const std::size_t pos = static_cast<std::size_t>(
        rng.UniformInt(4, static_cast<int64_t>(bytes.size()) - 1));
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 + rng.UniformInt(0, 254)));
    auto result = DeserializeBatch(corrupt);
    ASSERT_FALSE(result.ok()) << "flip at " << pos;
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
}

TEST_P(SerdePropertyTest, V2MultiByteCorruptionAlwaysIOError) {
  Batch b = RandomBatch(GetParam());
  const std::string bytes = SerializeBatch(b);
  Rng rng(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 16; ++trial) {
    std::string corrupt = bytes;
    const int flips = static_cast<int>(rng.UniformInt(2, 8));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.UniformInt(4, static_cast<int64_t>(bytes.size()) - 1));
      corrupt[pos] =
          static_cast<char>(corrupt[pos] ^ (1 + rng.UniformInt(0, 254)));
    }
    if (corrupt == bytes) continue;  // flips cancelled out
    auto result = DeserializeBatch(corrupt);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
}

TEST_P(SerdePropertyTest, RandomGarbageNeverCrashes) {
  Rng rng(GetParam() ^ 0x6A4BA6E);
  for (int trial = 0; trial < 16; ++trial) {
    std::string garbage(static_cast<std::size_t>(rng.UniformInt(0, 512)), '\0');
    for (char& ch : garbage) {
      ch = static_cast<char>(rng.UniformInt(0, 255));
    }
    if (trial % 4 == 0 && garbage.size() >= 4) {
      // Bias some trials onto the real decode paths.
      const char* magic = (trial % 8 == 0) ? "SWFT" : "SWF2";
      garbage[0] = magic[3];  // little-endian u32
      garbage[1] = magic[2];
      garbage[2] = magic[1];
      garbage[3] = magic[0];
    }
    auto result = DeserializeBatch(garbage);  // must not crash or OOM
    (void)result;
  }
}

TEST_P(SerdePropertyTest, CompressedFrameRoundTripExact) {
  // The shuffle writer may wrap either wire format in a compressed
  // frame (common/compress.h); the decoder must hand back the exact
  // batch with no caller-side negotiation.
  Batch b = RandomBatch(GetParam());
  for (const std::string& bytes : {SerializeBatch(b), SerializeBatchV1(b)}) {
    const std::string frame = CompressFrame(bytes);
    auto back = DeserializeBatch(frame);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(SerializeBatch(*back), SerializeBatch(b));
  }
}

TEST_P(SerdePropertyTest, CompressedFrameByteFlipFailsClosed) {
  Batch b = RandomBatch(GetParam());
  const std::string frame = CompressFrame(SerializeBatch(b));
  Rng rng(GetParam() ^ 0xF4A3E);
  // Any flip past the frame magic must surface as IOError: header
  // validation, the frame CRC over stored bytes, or (for a flip the
  // frame layer cannot see) the inner v2 CRC footer.
  for (int trial = 0; trial < 32; ++trial) {
    std::string corrupt = frame;
    const std::size_t pos = static_cast<std::size_t>(
        rng.UniformInt(4, static_cast<int64_t>(frame.size()) - 1));
    corrupt[pos] =
        static_cast<char>(corrupt[pos] ^ (1 + rng.UniformInt(0, 254)));
    auto result = DeserializeBatch(corrupt);
    ASSERT_FALSE(result.ok()) << "flip at " << pos;
    EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  }
}

TEST_P(SerdePropertyTest, CompressedFrameTruncationFailsClosed) {
  Batch b = RandomBatch(GetParam());
  const std::string frame = CompressFrame(SerializeBatch(b));
  Rng rng(GetParam() ^ 0x7C07);
  for (int trial = 0; trial < 16; ++trial) {
    const std::size_t cut = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(frame.size()) - 1));
    EXPECT_FALSE(DeserializeBatch(frame.substr(0, cut)).ok())
        << "cut at " << cut << " of " << frame.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace swift
