#include "exec/serde.h"

#include <gtest/gtest.h>

namespace swift {
namespace {

Batch SampleBatch() {
  Batch b;
  b.schema = Schema({{"id", DataType::kInt64},
                     {"price", DataType::kFloat64},
                     {"name", DataType::kString},
                     {"opt", DataType::kNull}});
  b.rows = {{Value(int64_t{1}), Value(3.25), Value("widget"), Value::Null()},
            {Value(int64_t{-7}), Value(-0.5), Value(""), Value(int64_t{9})}};
  return b;
}

TEST(SerdeTest, RoundTripPreservesEverything) {
  Batch b = SampleBatch();
  std::string bytes = SerializeBatch(b);
  auto r = DeserializeBatch(bytes);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->schema, b.schema);
  ASSERT_EQ(r->num_rows(), b.num_rows());
  for (std::size_t i = 0; i < b.rows.size(); ++i) {
    ASSERT_EQ(r->rows[i].size(), b.rows[i].size());
    for (std::size_t c = 0; c < b.rows[i].size(); ++c) {
      EXPECT_EQ(r->rows[i][c].Compare(b.rows[i][c]), 0)
          << "row " << i << " col " << c;
      EXPECT_EQ(r->rows[i][c].type(), b.rows[i][c].type());
    }
  }
}

TEST(SerdeTest, EmptyBatch) {
  Batch b;
  b.schema = Schema({{"x", DataType::kInt64}});
  auto r = DeserializeBatch(SerializeBatch(b));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
  EXPECT_EQ(r->schema.num_fields(), 1u);
}

TEST(SerdeTest, SizeEstimateMatchesActual) {
  Batch b = SampleBatch();
  EXPECT_EQ(SerializedBatchSize(b), SerializeBatch(b).size());
  Batch empty;
  EXPECT_EQ(SerializedBatchSize(empty), SerializeBatch(empty).size());
}

TEST(SerdeTest, RejectsBadMagic) {
  std::string bytes = SerializeBatch(SampleBatch());
  bytes[0] = 'X';
  EXPECT_EQ(DeserializeBatch(bytes).status().code(), StatusCode::kIOError);
}

TEST(SerdeTest, RejectsTruncation) {
  std::string bytes = SerializeBatch(SampleBatch());
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{5}}) {
    EXPECT_FALSE(DeserializeBatch(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(SerdeTest, RejectsTrailingGarbage) {
  std::string bytes = SerializeBatch(SampleBatch()) + "junk";
  EXPECT_EQ(DeserializeBatch(bytes).status().code(), StatusCode::kIOError);
}

TEST(SerdeTest, V1RejectsBadTypeTag) {
  Batch b;
  b.schema = Schema({{"x", DataType::kInt64}});
  std::string bytes = SerializeBatchV1(b);
  // Corrupt the field type byte (last byte of the schema section).
  // v1 layout: magic(4) nfields(4) namelen(4) name(1) type(1) ...
  bytes[13] = 99;
  EXPECT_FALSE(DeserializeBatch(bytes).ok());
}

TEST(SerdeTest, V1BuffersStillDeserialize) {
  // Version dispatch: spill files and retained recovery slots written in
  // the v1 format stay readable forever.
  Batch b = SampleBatch();
  std::string v1 = SerializeBatchV1(b);
  EXPECT_EQ(v1.size(), SerializedBatchSizeV1(b));
  auto r = DeserializeBatch(v1);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->schema, b.schema);
  ASSERT_EQ(r->num_rows(), b.num_rows());
  for (std::size_t i = 0; i < b.rows.size(); ++i) {
    for (std::size_t c = 0; c < b.rows[i].size(); ++c) {
      EXPECT_EQ(r->rows[i][c].Compare(b.rows[i][c]), 0);
    }
  }
  // And the two formats are distinguishable on the wire.
  EXPECT_NE(v1.substr(0, 4), SerializeBatch(b).substr(0, 4));
}

TEST(SerdeTest, V2IsSmallerThanV1OnTypedRows) {
  Batch b;
  b.schema = Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  for (int64_t i = 0; i < 1000; ++i) {
    b.rows.push_back({Value(i), Value(i * 3)});
  }
  // v1 pays a type tag per value and a column count per row; v2 pays one
  // bitmap bit per value.
  EXPECT_LT(SerializedBatchSize(b), SerializedBatchSizeV1(b));
  EXPECT_LT(static_cast<double>(SerializeBatch(b).size()),
            0.85 * static_cast<double>(SerializeBatchV1(b).size()));
}

TEST(SerdeTest, V2CrcDetectsEveryByteFlip) {
  const std::string bytes = SerializeBatch(SampleBatch());
  for (std::size_t pos = 4; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5A);
    auto r = DeserializeBatch(corrupt);
    EXPECT_FALSE(r.ok()) << "flip at " << pos;
    EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  }
}

TEST(SerdeTest, MixedTypeColumnRoundTrips) {
  // A column whose cells deviate from the schema type falls back to
  // per-value tags inside v2; values and types survive exactly.
  Batch b;
  b.schema = Schema({{"x", DataType::kInt64}});
  b.rows = {{Value(int64_t{1})}, {Value("not an int")}, {Value::Null()},
            {Value(2.5)}};
  auto r = DeserializeBatch(SerializeBatch(b));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 4u);
  EXPECT_EQ(r->rows[0][0].int64(), 1);
  EXPECT_EQ(r->rows[1][0].str(), "not an int");
  EXPECT_TRUE(r->rows[2][0].is_null());
  EXPECT_EQ(r->rows[3][0].float64(), 2.5);
}

TEST(SerdeTest, RaggedRowsFallBackToV1) {
  Batch b;
  b.schema = Schema({{"x", DataType::kInt64}, {"y", DataType::kString}});
  b.rows = {{Value(int64_t{1}), Value("a")}, {Value(int64_t{2})}};
  const std::string bytes = SerializeBatch(b);
  EXPECT_EQ(bytes, SerializeBatchV1(b));  // schema elision needs uniform rows
  EXPECT_EQ(bytes.size(), SerializedBatchSize(b));
  auto r = DeserializeBatch(bytes);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_rows(), 2u);
  EXPECT_EQ(r->rows[1].size(), 1u);
}

TEST(SerdeTest, AllNullTypedColumnRoundTrips) {
  Batch b;
  b.schema = Schema({{"opt", DataType::kNull}, {"v", DataType::kInt64}});
  b.rows = {{Value::Null(), Value(int64_t{1})},
            {Value::Null(), Value::Null()}};
  auto r = DeserializeBatch(SerializeBatch(b));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->rows[0][0].is_null());
  EXPECT_TRUE(r->rows[1][1].is_null());
  EXPECT_EQ(r->rows[0][1].int64(), 1);
}

TEST(SerdeTest, LargeBatchRoundTrip) {
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}, {"s", DataType::kString}});
  for (int64_t i = 0; i < 5000; ++i) {
    b.rows.push_back({Value(i), Value(std::string(i % 40, 'a'))});
  }
  auto r = DeserializeBatch(SerializeBatch(b));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 5000u);
  EXPECT_EQ(r->rows[4999][0].int64(), 4999);
}

}  // namespace
}  // namespace swift
