#include "exec/serde.h"

#include <gtest/gtest.h>

namespace swift {
namespace {

Batch SampleBatch() {
  Batch b;
  b.schema = Schema({{"id", DataType::kInt64},
                     {"price", DataType::kFloat64},
                     {"name", DataType::kString},
                     {"opt", DataType::kNull}});
  b.rows = {{Value(int64_t{1}), Value(3.25), Value("widget"), Value::Null()},
            {Value(int64_t{-7}), Value(-0.5), Value(""), Value(int64_t{9})}};
  return b;
}

TEST(SerdeTest, RoundTripPreservesEverything) {
  Batch b = SampleBatch();
  std::string bytes = SerializeBatch(b);
  auto r = DeserializeBatch(bytes);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->schema, b.schema);
  ASSERT_EQ(r->num_rows(), b.num_rows());
  for (std::size_t i = 0; i < b.rows.size(); ++i) {
    ASSERT_EQ(r->rows[i].size(), b.rows[i].size());
    for (std::size_t c = 0; c < b.rows[i].size(); ++c) {
      EXPECT_EQ(r->rows[i][c].Compare(b.rows[i][c]), 0)
          << "row " << i << " col " << c;
      EXPECT_EQ(r->rows[i][c].type(), b.rows[i][c].type());
    }
  }
}

TEST(SerdeTest, EmptyBatch) {
  Batch b;
  b.schema = Schema({{"x", DataType::kInt64}});
  auto r = DeserializeBatch(SerializeBatch(b));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 0u);
  EXPECT_EQ(r->schema.num_fields(), 1u);
}

TEST(SerdeTest, SizeEstimateMatchesActual) {
  Batch b = SampleBatch();
  EXPECT_EQ(SerializedBatchSize(b), SerializeBatch(b).size());
  Batch empty;
  EXPECT_EQ(SerializedBatchSize(empty), SerializeBatch(empty).size());
}

TEST(SerdeTest, RejectsBadMagic) {
  std::string bytes = SerializeBatch(SampleBatch());
  bytes[0] = 'X';
  EXPECT_EQ(DeserializeBatch(bytes).status().code(), StatusCode::kIOError);
}

TEST(SerdeTest, RejectsTruncation) {
  std::string bytes = SerializeBatch(SampleBatch());
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{5}}) {
    EXPECT_FALSE(DeserializeBatch(bytes.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(SerdeTest, RejectsTrailingGarbage) {
  std::string bytes = SerializeBatch(SampleBatch()) + "junk";
  EXPECT_EQ(DeserializeBatch(bytes).status().code(), StatusCode::kIOError);
}

TEST(SerdeTest, RejectsBadTypeTag) {
  Batch b;
  b.schema = Schema({{"x", DataType::kInt64}});
  std::string bytes = SerializeBatch(b);
  // Corrupt the field type byte (last byte of the schema section).
  // Layout: magic(4) nfields(4) namelen(4) name(1) type(1) ...
  bytes[13] = 99;
  EXPECT_FALSE(DeserializeBatch(bytes).ok());
}

TEST(SerdeTest, LargeBatchRoundTrip) {
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}, {"s", DataType::kString}});
  for (int64_t i = 0; i < 5000; ++i) {
    b.rows.push_back({Value(i), Value(std::string(i % 40, 'a'))});
  }
  auto r = DeserializeBatch(SerializeBatch(b));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 5000u);
  EXPECT_EQ(r->rows[4999][0].int64(), 4999);
}

}  // namespace
}  // namespace swift
