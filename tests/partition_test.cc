#include "partition/partitioners.h"

#include <gtest/gtest.h>

#include <set>

#include "dag/dag_builder.h"

namespace swift {
namespace {

using OK = OperatorKind;

// Builds the TPC-H Q9 DAG of Fig. 4(a): 12 stages whose barrier edges are
// J4->J6, J6->J10, J10->R11, yielding graphlets {M1,M2,M3,J4}, {M5,J6},
// {M7,M8,R9,J10}, {R11,R12}.
struct Q9 {
  StageId m1, m2, m3, j4, m5, j6, m7, m8, r9, j10, r11, r12;
  JobDag dag;
};

Q9 BuildQ9() {
  DagBuilder b("tpch-q9");
  Q9 q{.m1 = b.AddStage("M1", 956, {OK::kTableScan, OK::kShuffleWrite}),
       .m2 = b.AddStage("M2", 220, {OK::kTableScan, OK::kShuffleWrite}),
       .m3 = b.AddStage("M3", 3, {OK::kTableScan, OK::kShuffleWrite}),
       .j4 = b.AddStage("J4", 220,
                        {OK::kShuffleRead, OK::kMergeJoin, OK::kMergeSort,
                         OK::kShuffleWrite}),
       .m5 = b.AddStage("M5", 403, {OK::kTableScan, OK::kShuffleWrite}),
       .j6 = b.AddStage("J6", 403,
                        {OK::kShuffleRead, OK::kMergeJoin, OK::kMergeSort,
                         OK::kShuffleWrite}),
       .m7 = b.AddStage("M7", 220, {OK::kTableScan, OK::kShuffleWrite}),
       .m8 = b.AddStage("M8", 20, {OK::kTableScan, OK::kShuffleWrite}),
       .r9 = b.AddStage("R9", 20,
                        {OK::kShuffleRead, OK::kHashJoin, OK::kShuffleWrite}),
       .j10 = b.AddStage("J10", 100,
                         {OK::kShuffleRead, OK::kMergeJoin, OK::kMergeSort,
                          OK::kShuffleWrite}),
       .r11 = b.AddStage("R11", 4,
                         {OK::kShuffleRead, OK::kStreamLine,
                          OK::kShuffleWrite}),
       .r12 = b.AddStage("R12", 1, {OK::kShuffleRead, OK::kAdhocSink}),
       .dag = JobDag()};  // placeholder, replaced below
  b.AddEdge(q.m1, q.j4)
      .AddEdge(q.m2, q.j4)
      .AddEdge(q.m3, q.j4)
      .AddEdge(q.j4, q.j6)
      .AddEdge(q.m5, q.j6)
      .AddEdge(q.j6, q.j10)
      .AddEdge(q.m7, q.r9)
      .AddEdge(q.m8, q.r9)
      .AddEdge(q.r9, q.j10)
      .AddEdge(q.j10, q.r11)
      .AddEdge(q.r11, q.r12);
  auto dag = b.Build();
  EXPECT_TRUE(dag.ok()) << dag.status().ToString();
  q.dag = std::move(dag).ValueOrDie();
  return q;
}

std::set<StageId> StagesOf(const GraphletPlan& plan, GraphletId g) {
  const auto& v = plan.graphlets[static_cast<std::size_t>(g)].stages;
  return {v.begin(), v.end()};
}

TEST(PartitionTest, Q9YieldsFourGraphletsMatchingFig4) {
  Q9 q = BuildQ9();
  ShuffleModeAwarePartitioner p;
  auto plan = p.Partition(q.dag);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->graphlets.size(), 4u);

  GraphletId g1 = plan->GraphletOf(q.j4);
  GraphletId g2 = plan->GraphletOf(q.j6);
  GraphletId g3 = plan->GraphletOf(q.j10);
  GraphletId g4 = plan->GraphletOf(q.r11);

  EXPECT_EQ(StagesOf(*plan, g1), (std::set<StageId>{q.m1, q.m2, q.m3, q.j4}));
  EXPECT_EQ(StagesOf(*plan, g2), (std::set<StageId>{q.m5, q.j6}));
  EXPECT_EQ(StagesOf(*plan, g3),
            (std::set<StageId>{q.m7, q.m8, q.r9, q.j10}));
  EXPECT_EQ(StagesOf(*plan, g4), (std::set<StageId>{q.r11, q.r12}));
}

TEST(PartitionTest, Q9TriggerStagesMatchFig4) {
  Q9 q = BuildQ9();
  auto plan = ShuffleModeAwarePartitioner().Partition(q.dag);
  ASSERT_TRUE(plan.ok());
  auto trigger = [&](StageId member) {
    return plan->graphlets[static_cast<std::size_t>(plan->GraphletOf(member))]
        .trigger_stage;
  };
  EXPECT_EQ(trigger(q.m1), q.j4);
  EXPECT_EQ(trigger(q.m5), q.j6);
  EXPECT_EQ(trigger(q.m7), q.j10);
  EXPECT_EQ(trigger(q.r12), -1);  // terminal graphlet
}

TEST(PartitionTest, Q9DependenciesAreChain) {
  Q9 q = BuildQ9();
  auto plan = ShuffleModeAwarePartitioner().Partition(q.dag);
  ASSERT_TRUE(plan.ok());
  GraphletId g1 = plan->GraphletOf(q.j4);
  GraphletId g2 = plan->GraphletOf(q.j6);
  GraphletId g3 = plan->GraphletOf(q.j10);
  GraphletId g4 = plan->GraphletOf(q.r11);
  EXPECT_TRUE(plan->deps[static_cast<std::size_t>(g1)].empty());
  EXPECT_EQ(plan->deps[static_cast<std::size_t>(g2)],
            (std::vector<GraphletId>{g1}));
  EXPECT_EQ(plan->deps[static_cast<std::size_t>(g3)],
            (std::vector<GraphletId>{g2}));
  EXPECT_EQ(plan->deps[static_cast<std::size_t>(g4)],
            (std::vector<GraphletId>{g3}));
}

TEST(PartitionTest, Q9SubmissionOrderRespectsDependencies) {
  Q9 q = BuildQ9();
  auto plan = ShuffleModeAwarePartitioner().Partition(q.dag);
  ASSERT_TRUE(plan.ok());
  auto order = plan->SubmissionOrder();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](GraphletId g) {
    return std::find(order.begin(), order.end(), g) - order.begin();
  };
  EXPECT_LT(pos(plan->GraphletOf(q.j4)), pos(plan->GraphletOf(q.j6)));
  EXPECT_LT(pos(plan->GraphletOf(q.j6)), pos(plan->GraphletOf(q.j10)));
  EXPECT_LT(pos(plan->GraphletOf(q.j10)), pos(plan->GraphletOf(q.r11)));
}

TEST(PartitionTest, SingleStageJobIsOneGraphlet) {
  DagBuilder b("tiny");
  b.AddStage("only", 3, {OK::kTableScan, OK::kAdhocSink});
  auto dag = b.Build();
  ASSERT_TRUE(dag.ok());
  auto plan = ShuffleModeAwarePartitioner().Partition(*dag);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphlets.size(), 1u);
  EXPECT_EQ(plan->graphlets[0].trigger_stage, -1);
}

TEST(PartitionTest, AllPipelineDagIsOneGraphlet) {
  DagBuilder b("pipe");
  StageId a = b.AddStage("a", 2, {OK::kTableScan});
  StageId c = b.AddStage("c", 2, {OK::kHashJoin});
  StageId d = b.AddStage("d", 2, {OK::kAdhocSink});
  b.AddEdge(a, c).AddEdge(c, d);
  auto dag = b.Build();
  ASSERT_TRUE(dag.ok());
  auto plan = ShuffleModeAwarePartitioner().Partition(*dag);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphlets.size(), 1u);
}

TEST(PartitionTest, AllBarrierDagIsPerStage) {
  DagBuilder b("bar");
  StageId a = b.AddStage("a", 2, {OK::kSortBy});
  StageId c = b.AddStage("c", 2, {OK::kMergeSort});
  StageId d = b.AddStage("d", 2, {OK::kAdhocSink});
  b.AddEdge(a, c).AddEdge(c, d);
  auto dag = b.Build();
  ASSERT_TRUE(dag.ok());
  auto plan = ShuffleModeAwarePartitioner().Partition(*dag);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphlets.size(), 3u);
}

TEST(PartitionTest, ScanPullsInUpstreamPipelinePredecessors) {
  // d is reached first in topo order only via its pipeline predecessor;
  // Algorithm 2 must scan *inputs* as well as outputs.
  DagBuilder b("updown");
  StageId sorter = b.AddStage("sorter", 2, {OK::kMergeSort});
  StageId scan = b.AddStage("scan", 2, {OK::kTableScan});
  StageId join = b.AddStage("join", 2, {OK::kShuffleRead, OK::kHashJoin});
  b.AddEdge(sorter, join).AddEdge(scan, join);
  auto dag = b.Build();
  ASSERT_TRUE(dag.ok());
  auto plan = ShuffleModeAwarePartitioner().Partition(*dag);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->graphlets.size(), 2u);
  EXPECT_EQ(plan->GraphletOf(scan), plan->GraphletOf(join));
  EXPECT_NE(plan->GraphletOf(sorter), plan->GraphletOf(join));
}

TEST(PartitionTest, WholeJobPartitionerMakesOneUnit) {
  Q9 q = BuildQ9();
  auto plan = WholeJobPartitioner().Partition(q.dag);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphlets.size(), 1u);
  EXPECT_EQ(plan->graphlets[0].stages.size(), 12u);
  EXPECT_TRUE(plan->deps[0].empty());
}

TEST(PartitionTest, PerStagePartitionerMakesOneUnitPerStage) {
  Q9 q = BuildQ9();
  auto plan = PerStagePartitioner().Partition(q.dag);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphlets.size(), 12u);
  // Every graphlet with inputs depends on each input's graphlet.
  GraphletId gj4 = plan->GraphletOf(q.j4);
  EXPECT_EQ(plan->deps[static_cast<std::size_t>(gj4)].size(), 3u);
}

TEST(PartitionTest, DataSizePartitionerCutsOnVolume) {
  DagBuilder b("vol");
  StageDef s;
  s.name = "a";
  s.task_count = 2;
  s.output_bytes_per_task = 100.0;
  StageId a = b.AddStage(s);
  s.name = "c";
  StageId c = b.AddStage(s);
  s.name = "d";
  StageId d = b.AddStage(s);
  b.AddEdge(a, c).AddEdge(c, d);
  auto dag = b.Build();
  ASSERT_TRUE(dag.ok());
  // Each stage emits 200 bytes; a 450-byte bubble holds two stages.
  auto plan = DataSizePartitioner(450.0).Partition(*dag);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->graphlets.size(), 2u);
  // A budget below a single stage's output degenerates to per-stage.
  auto tiny = DataSizePartitioner(100.0).Partition(*dag);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->graphlets.size(), 3u);
  // A large budget keeps the whole job together.
  auto big = DataSizePartitioner(1e9).Partition(*dag);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->graphlets.size(), 1u);
}

TEST(PartitionTest, EveryStageCoveredExactlyOnce) {
  Q9 q = BuildQ9();
  for (const Partitioner* p :
       std::initializer_list<const Partitioner*>{
           new ShuffleModeAwarePartitioner(), new WholeJobPartitioner(),
           new PerStagePartitioner(), new DataSizePartitioner(1e6)}) {
    auto plan = p->Partition(q.dag);
    ASSERT_TRUE(plan.ok()) << p->name();
    std::set<StageId> seen;
    for (const auto& g : plan->graphlets) {
      for (StageId s : g.stages) EXPECT_TRUE(seen.insert(s).second);
    }
    EXPECT_EQ(seen.size(), q.dag.stages().size()) << p->name();
    delete p;
  }
}

TEST(PartitionTest, GraphletTotalTasks) {
  Q9 q = BuildQ9();
  auto plan = ShuffleModeAwarePartitioner().Partition(q.dag);
  ASSERT_TRUE(plan.ok());
  GraphletId g1 = plan->GraphletOf(q.j4);
  EXPECT_EQ(plan->graphlets[static_cast<std::size_t>(g1)].TotalTasks(q.dag),
            956 + 220 + 3 + 220);
}

TEST(PartitionTest, CyclicContractionIsCondensed) {
  // C -> {A,B} pipeline, A -> X barrier, X -> B barrier: contracting
  // {A,B,C} vs {X} would be cyclic; the partitioner must merge.
  DagBuilder b("adversarial");
  StageId cc = b.AddStage("c", 1, {OK::kTableScan});
  StageId a = b.AddStage("a", 1, {OK::kMergeSort});
  StageId x = b.AddStage("x", 1, {OK::kMergeSort});
  StageId bb = b.AddStage("b", 1, {OK::kAdhocSink});
  b.AddEdge(cc, a).AddEdge(cc, bb).AddEdge(a, x).AddEdge(x, bb);
  auto dag = b.Build();
  ASSERT_TRUE(dag.ok());
  auto plan = ShuffleModeAwarePartitioner().Partition(*dag);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->SubmissionOrder().size(), plan->graphlets.size());
}

}  // namespace
}  // namespace swift
