#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"

namespace swift {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
  EXPECT_EQ(rng.UniformInt(9, 2), 9);  // degenerate -> lo
}

TEST(RngTest, NormalMomentsApproximate) {
  Rng rng(42);
  std::vector<double> xs;
  xs.reserve(50000);
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.Normal());
  double mean = Mean(xs);
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.Exponential(3.0));
  EXPECT_NEAR(Mean(xs), 3.0, 0.1);
  for (double x : xs) EXPECT_GE(x, 0.0);
}

TEST(RngTest, ParetoLowerBound) {
  Rng rng(44);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(45);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 50000.0, 0.3, 0.02);
}

TEST(RngTest, ReseedingResetsStream) {
  Rng rng(5);
  uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(5);
  EXPECT_EQ(rng.Next(), first);
}

}  // namespace
}  // namespace swift
