#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "exec/tpch.h"
#include "runtime/local_runtime.h"

namespace swift {
namespace {

// Runtime-level recovery matrix: every FailureKind x RecoveryCase pair
// exercised through real execution (not just the RecoveryPlanner unit),
// plus machine loss, multi-failure waves, and the transient-read paths.

std::vector<std::string> Canonical(const Batch& b) {
  std::vector<std::string> rows;
  rows.reserve(b.rows.size());
  for (const Row& r : b.rows) {
    std::string s;
    for (const Value& v : r) {
      s += v.ToString();
      s += '|';
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::unique_ptr<LocalRuntime> MakeRuntime(LocalRuntimeConfig cfg = {}) {
  auto rt = std::make_unique<LocalRuntime>(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  EXPECT_TRUE(GenerateTpch(tpch, rt->catalog()).ok());
  return rt;
}

StageId FindScanStage(const DistributedPlan& plan) {
  for (const auto& [id, p] : plan.stages) {
    if (!p.scan_table.empty()) return id;
  }
  return -1;
}

StageId FindFinalStage(const DistributedPlan& plan) { return plan.final_stage; }

StageId FindAggStage(const DistributedPlan& plan) {
  for (const auto& [id, p] : plan.stages) {
    for (const auto& op : p.ops) {
      if (op.kind == LocalOpDesc::Kind::kStreamedAggregate ||
          op.kind == LocalOpDesc::Kind::kHashAggregate) {
        return id;
      }
    }
  }
  return -1;
}

// Sort-mode group-by plans as scan ->(pipeline) agg ->(barrier) final:
// the sorting aggregate's only successor is cross-graphlet
// (-> kOutputFailure) and the final stage's only predecessor is
// cross-graphlet (-> kInputFailure).
const char* kGroupBySql =
    "select n_regionkey, count(*) as n from tpch_nation group by "
    "n_regionkey";
// Pipeline-only plan: scan and final stage share one graphlet
// (-> kIntraIdempotent).
const char* kSelectSql = "select n_name from tpch_nation where n_regionkey = 3";

const FailureKind kRetryableKinds[] = {FailureKind::kProcessCrash,
                                       FailureKind::kMachineFailure,
                                       FailureKind::kNetworkTimeout};

std::vector<std::string> CleanResult(const char* sql,
                                     const PlannerConfig& pc = {}) {
  auto rt = MakeRuntime();
  auto got = rt->ExecuteSql(sql, pc);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  return Canonical(*got);
}

// One injected failure, full job run, byte-compared against a clean run.
void RunCaseMatrix(const char* sql, StageId (*pick)(const DistributedPlan&),
                   int task_index, RecoveryCase want_case) {
  const std::vector<std::string> want = CleanResult(sql);
  for (FailureKind kind : kRetryableKinds) {
    SCOPED_TRACE(std::string(FailureKindToString(kind)));
    auto rt = MakeRuntime();
    auto plan = PlanSql(sql, *rt->catalog(), PlannerConfig{});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const StageId target = pick(*plan);
    ASSERT_GE(target, 0);
    rt->InjectFailureOnce(TaskRef{target, task_index}, kind);
    auto report = rt->RunPlan(*plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(Canonical(report->result), want);
    EXPECT_GE(report->stats.recoveries, 1);
    EXPECT_GE(report->stats.tasks_rerun, 1);
    EXPECT_GE(report->stats.recoveries_by_case[want_case], 1)
        << "expected case " << RecoveryCaseToString(want_case);
  }
}

TEST(RuntimeRecoveryMatrix, IntraIdempotentAcrossFailureKinds) {
  RunCaseMatrix(kSelectSql, FindScanStage, 0, RecoveryCase::kIntraIdempotent);
}

TEST(RuntimeRecoveryMatrix, InputFailureAcrossFailureKinds) {
  RunCaseMatrix(kGroupBySql, FindFinalStage, 0, RecoveryCase::kInputFailure);
}

TEST(RuntimeRecoveryMatrix, OutputFailureAcrossFailureKinds) {
  RunCaseMatrix(kGroupBySql, FindAggStage, 1, RecoveryCase::kOutputFailure);
}

TEST(RuntimeRecoveryMatrix, NonIdempotentStagePoisonsSuccessors) {
  const std::vector<std::string> want = CleanResult(kGroupBySql);
  auto rt = MakeRuntime();
  auto planned = PlanSql(kGroupBySql, *rt->catalog(), PlannerConfig{});
  ASSERT_TRUE(planned.ok());
  DistributedPlan plan = *planned;
  // Same topology, every stage declared non-idempotent: recovery must
  // take the Fig. 6(b) path and invalidate downstream retained output.
  std::vector<StageDef> stages = plan.dag.stages();
  for (StageDef& s : stages) s.idempotent = false;
  auto dag = JobDag::Create(plan.dag.name(), stages, plan.dag.edges());
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  plan.dag = *dag;
  const StageId agg = FindAggStage(plan);
  ASSERT_GE(agg, 0);
  rt->InjectFailureOnce(TaskRef{agg, 1}, FailureKind::kProcessCrash);
  auto report = rt->RunPlan(plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(Canonical(report->result), want);
  EXPECT_GE(report->stats.recoveries_by_case[RecoveryCase::kIntraNonIdempotent],
            1);
}

TEST(RuntimeRecoveryMatrix, MultipleFailuresInOneStageWave) {
  const std::vector<std::string> want = CleanResult(kGroupBySql);
  auto rt = MakeRuntime();
  auto plan = PlanSql(kGroupBySql, *rt->catalog(), PlannerConfig{});
  ASSERT_TRUE(plan.ok());
  const StageId agg = FindAggStage(*plan);
  ASSERT_GE(agg, 0);
  rt->InjectFailureOnce(TaskRef{agg, 0}, FailureKind::kProcessCrash);
  rt->InjectFailureOnce(TaskRef{agg, 1}, FailureKind::kNetworkTimeout);
  auto report = rt->RunPlan(*plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(Canonical(report->result), want);
  EXPECT_GE(report->stats.recoveries, 2);
  EXPECT_GE(report->stats.tasks_rerun, 2);
  EXPECT_GE(report->stats.recoveries_by_case[RecoveryCase::kOutputFailure], 2);
}

TEST(RuntimeRecoveryMatrix, ApplicationErrorInAggregateIsReportOnly) {
  auto rt = MakeRuntime();
  auto plan = PlanSql(kGroupBySql, *rt->catalog(), PlannerConfig{});
  ASSERT_TRUE(plan.ok());
  const StageId agg = FindAggStage(*plan);
  ASSERT_GE(agg, 0);
  rt->InjectFailureOnce(TaskRef{agg, 2}, FailureKind::kApplicationError);
  auto report = rt->RunPlan(*plan);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kApplication);
}

TEST(RuntimeRecoveryMatrix, ScheduledMachineLossMidJob) {
  const std::vector<std::string> want = CleanResult(kGroupBySql);
  LocalRuntimeConfig cfg;
  FaultSchedule fs;
  fs.kill_machine = 1;
  fs.kill_after_task_starts = 2;  // mid-wave: after the scan, during agg
  cfg.fault_schedule = fs;
  auto rt = MakeRuntime(cfg);
  auto report = rt->RunSql(kGroupBySql);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(Canonical(report->result), want);
  EXPECT_GE(report->stats.machine_failures, 1);
  ASSERT_NE(rt->fault_injector(), nullptr);
  EXPECT_EQ(rt->fault_injector()->stats().machine_kills, 1);
  const auto down = rt->DownMachines();
  EXPECT_NE(std::find(down.begin(), down.end(), 1), down.end());
}

TEST(RuntimeRecoveryMatrix, MachineLossAfterConsumersReadIsNoStepRecovery) {
  // Hash mode keeps the whole job in one graphlet; once every aggregate
  // task has pulled the scan's output, losing the scan's machine must
  // plan to the paper's "no step will be taken" case for the scan while
  // the lost aggregate output is rebuilt.
  PlannerConfig hashed;
  hashed.sort_mode = false;
  const std::vector<std::string> want = CleanResult(kGroupBySql, hashed);
  LocalRuntimeConfig cfg;
  cfg.force_shuffle_kind = ShuffleKind::kDirect;
  auto probe = MakeRuntime(cfg);
  auto plan = PlanSql(kGroupBySql, *probe->catalog(), hashed);
  ASSERT_TRUE(plan.ok());
  FaultSchedule fs;
  fs.kill_machine = 0;  // first-wave placement: the scan's machine
  fs.kill_after_task_starts = static_cast<int>(plan->dag.TotalTasks());
  cfg.fault_schedule = fs;
  auto rt = MakeRuntime(cfg);
  auto report = rt->RunPlan(*plan);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(Canonical(report->result), want);
  EXPECT_GE(report->stats.machine_failures, 1);
  EXPECT_GE(report->stats.recoveries_by_case[RecoveryCase::kNone], 1);
}

TEST(RuntimeRecoveryMatrix, FailAndRestoreMachineApi) {
  const std::vector<std::string> want = CleanResult(kGroupBySql);
  auto rt = MakeRuntime();
  rt->FailMachine(2);
  ASSERT_EQ(rt->DownMachines(), std::vector<int>{2});
  auto around = rt->RunSql(kGroupBySql);
  ASSERT_TRUE(around.ok()) << around.status().ToString();
  EXPECT_EQ(Canonical(around->result), want);
  rt->RestoreMachine(2);
  EXPECT_TRUE(rt->DownMachines().empty());
  auto after = rt->RunSql(kGroupBySql);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(Canonical(after->result), want);
}

TEST(RuntimeRecoveryMatrix, TransientTimeoutsRetryInPlace) {
  const std::vector<std::string> want = CleanResult(kGroupBySql);
  LocalRuntimeConfig cfg;
  FaultSchedule fs;
  fs.read_timeout_p = 1.0;  // every slot is a flaky link
  fs.timeouts_per_victim = 2;
  fs.max_read_timeouts = 1 << 20;
  cfg.fault_schedule = fs;
  auto rt = MakeRuntime(cfg);
  auto report = rt->RunSql(kGroupBySql);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(Canonical(report->result), want);
  // Timeouts are absorbed by in-place retries, never by task re-runs.
  EXPECT_GE(report->stats.shuffle.read_timeouts, 1);
  EXPECT_GE(report->stats.shuffle.read_retries, 1);
  EXPECT_EQ(report->stats.tasks_rerun, 0);
  EXPECT_EQ(report->stats.recoveries, 0);
}

TEST(RuntimeRecoveryMatrix, CorruptPayloadsAreRejectedAndRefetched) {
  const std::vector<std::string> want = CleanResult(kGroupBySql);
  LocalRuntimeConfig cfg;
  FaultSchedule fs;
  fs.corrupt_p = 1.0;
  fs.max_corruptions = 4;
  cfg.fault_schedule = fs;
  auto rt = MakeRuntime(cfg);
  auto report = rt->RunSql(kGroupBySql);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(Canonical(report->result), want);
  EXPECT_GE(report->stats.corrupt_read_retries, 1);
  EXPECT_GE(report->stats.shuffle.corrupt_payloads, 1);
  ASSERT_NE(rt->fault_injector(), nullptr);
  EXPECT_GE(rt->fault_injector()->stats().corruptions, 1);
}

}  // namespace
}  // namespace swift
