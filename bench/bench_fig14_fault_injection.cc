// Reproduces Fig. 14: the impact of single-failure recovery on TPC-H
// Q13, Swift's fine-grained recovery vs whole-job restart. Failures are
// injected at normalized times 20/40/60/80/100 (non-failure runtime =
// 100) into stages M2, J3, R4, R5, R6 respectively.
//
// Paper: no slowdown at t=20 (M2's output was already consumed), a
// visible hit at t=40 (J3 is on the critical path with large input),
// and <10% slowdown for every case — far below job restart.

#include <map>

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "trace/tpch_jobs.h"


namespace {
// The paper's TPC-H/Terasort runs own the whole cluster: tasks spread
// over every machine.
swift::SimConfig Dedicated(swift::SimConfig cfg) {
  cfg.machine_spread_multiplier = 1e9;
  return cfg;
}
}  // namespace

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 14", "Single-failure slowdown on Q13: Swift vs job restart",
         "Swift: 0% at t=20, <10% elsewhere; restart: up to ~100%");
  auto job = BuildTpchJob(13);
  if (!job.ok()) return 1;

  SimConfig swift_cfg = Dedicated(MakeSwiftSimConfig(100, 40));
  // Single job, one wave per stage: a task re-run costs a full task time.
  swift_cfg.rerun_cost_fraction = 1.0;
  SimConfig restart_cfg = swift_cfg;
  restart_cfg.fine_grained_recovery = false;

  const double baseline =
      RunSingleJob(swift_cfg, *job).finish_time -
      RunSingleJob(swift_cfg, *job).first_alloc_time;
  std::printf("non-failure Q13 runtime: %.2f s (normalized to 100)\n\n",
              baseline);

  std::map<std::string, StageId> by_name;
  for (const StageDef& s : job->dag.stages()) by_name[s.name] = s.id;
  struct Case {
    double norm_time;
    const char* stage;
  };
  const Case cases[] = {
      {20, "M2"}, {40, "J3"}, {60, "R4"}, {80, "R5"}, {100, "R6"}};

  Row({"Inject t", "Stage", "Swift slow%", "Restart slow%"});
  for (const Case& c : cases) {
    SimJobSpec spec = *job;
    FailureInjection f;
    f.time = c.norm_time / 100.0 * baseline * 0.999;
    f.stage = by_name.at(c.stage);
    f.kind = FailureKind::kProcessCrash;
    spec.failures = {f};
    const SimJobResult s = RunSingleJob(swift_cfg, spec);
    const SimJobResult r = RunSingleJob(restart_cfg, spec);
    const double swift_rt = s.finish_time - s.first_alloc_time;
    const double restart_rt = r.finish_time - r.first_alloc_time;
    Row({F(c.norm_time, 0), c.stage,
         F(100.0 * (swift_rt - baseline) / baseline, 1),
         F(100.0 * (restart_rt - baseline) / baseline, 1)});
  }
  return 0;
}
