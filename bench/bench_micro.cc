// Google-benchmark micro-benchmarks of the library's hot components:
// DAG construction, graphlet partitioning, expression evaluation, batch
// serde, hash partitioning, Cache Worker operations, the event engine,
// SQL parsing/planning, and the sort/aggregate operators.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <unordered_map>

#include "common/hash64.h"
#include "common/thread_pool.h"
#include "dag/dag_builder.h"
#include "exec/bound_expr.h"
#include "exec/morsel.h"
#include "exec/hash_table.h"
#include "exec/key_encoder.h"
#include "exec/operators.h"
#include "exec/serde.h"
#include "exec/tpch.h"
#include "partition/partitioners.h"
#include "shuffle/cache_worker.h"
#include "shuffle/shuffle_service.h"
#include "sim/event_engine.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "trace/tpch_jobs.h"

namespace swift {
namespace {

void BM_JobDagCreate(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DagBuilder b("chain");
    for (int s = 0; s < stages; ++s) {
      b.AddStage("s" + std::to_string(s), 4,
                 {OperatorKind::kShuffleRead, OperatorKind::kMergeSort,
                  OperatorKind::kShuffleWrite});
    }
    for (int s = 0; s + 1 < stages; ++s) b.AddEdge(s, s + 1);
    auto dag = b.Build();
    benchmark::DoNotOptimize(dag);
  }
}
BENCHMARK(BM_JobDagCreate)->Arg(8)->Arg(64)->Arg(256);

void BM_GraphletPartition_Q9(benchmark::State& state) {
  auto job = BuildTpchJob(9);
  ShuffleModeAwarePartitioner p;
  for (auto _ : state) {
    auto plan = p.Partition(job->dag);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_GraphletPartition_Q9);

// l_extendedprice * (1 - l_discount) style expression.
ExprPtr MakeDiscountExpr() {
  return Expr::Binary(
      BinaryOp::kMul, Expr::Column("a"),
      Expr::Binary(BinaryOp::kSub, Expr::Literal(Value(1.0)),
                   Expr::Column("b")));
}

void BM_ExpressionEvalInterpreted(benchmark::State& state) {
  Schema schema({{"a", DataType::kFloat64}, {"b", DataType::kFloat64}});
  Row row = {Value(3.5), Value(0.1)};
  auto e = MakeDiscountExpr();
  for (auto _ : state) {
    auto v = e->Evaluate(schema, row);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExpressionEvalInterpreted);

void BM_ExpressionEvalBound(benchmark::State& state) {
  Schema schema({{"a", DataType::kFloat64}, {"b", DataType::kFloat64}});
  Row row = {Value(3.5), Value(0.1)};
  auto bound = *Bind(MakeDiscountExpr(), schema);
  for (auto _ : state) {
    auto v = bound->Evaluate(row);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ExpressionEvalBound);

void BM_ExpressionEvalBoundColumn(benchmark::State& state) {
  Schema schema({{"a", DataType::kFloat64}, {"b", DataType::kFloat64}});
  std::vector<Row> rows;
  for (int i = 0; i < 1024; ++i) {
    rows.push_back({Value(i * 1.5), Value((i % 97) * 0.01)});
  }
  auto bound = *Bind(MakeDiscountExpr(), schema);
  std::vector<Value> out;
  for (auto _ : state) {
    auto st = bound->EvaluateColumn(rows, &out);
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_ExpressionEvalBoundColumn);

Batch MakeBatch(int rows) {
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64},
                     {"v", DataType::kFloat64},
                     {"s", DataType::kString}});
  for (int i = 0; i < rows; ++i) {
    b.rows.push_back({Value(static_cast<int64_t>(i)), Value(i * 0.5),
                      Value("payload-" + std::to_string(i % 100))});
  }
  return b;
}

void BM_SerializeBatch(benchmark::State& state) {
  Batch b = MakeBatch(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string bytes = SerializeBatch(b);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(SerializedBatchSize(b)));
}
BENCHMARK(BM_SerializeBatch)->Arg(100)->Arg(10000);

void BM_DeserializeBatch(benchmark::State& state) {
  std::string bytes = SerializeBatch(MakeBatch(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto b = DeserializeBatch(bytes);
    benchmark::DoNotOptimize(b);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_DeserializeBatch)->Arg(100)->Arg(10000);

// Int-heavy rows are where the schema-elided v2 format pays off most:
// v1 spends a type tag per value and a column count per row, v2 one
// validity bit per value.
// 16 int64 columns: the width of a TPC-H lineitem row once dates and
// flags are dictionary/epoch-encoded — the int-heavy shape the shuffle
// path sees on the aggregation-bound queries.
constexpr int kIntBatchCols = 16;

Batch MakeIntBatch(int rows) {
  Batch b;
  std::vector<Field> fields;
  for (int c = 0; c < kIntBatchCols; ++c) {
    fields.push_back({"c" + std::to_string(c), DataType::kInt64});
  }
  b.schema = Schema(std::move(fields));
  for (int i = 0; i < rows; ++i) {
    Row row;
    row.reserve(kIntBatchCols);
    for (int c = 0; c < kIntBatchCols; ++c) {
      row.emplace_back(static_cast<int64_t>(i * 31 + c));
    }
    b.rows.push_back(std::move(row));
  }
  return b;
}

void BM_SerdeV1SerializeInts(benchmark::State& state) {
  Batch b = MakeIntBatch(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string bytes = SerializeBatchV1(b);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(SerializedBatchSizeV1(b)));
}
BENCHMARK(BM_SerdeV1SerializeInts)->Arg(10000);

void BM_SerdeV2SerializeInts(benchmark::State& state) {
  Batch b = MakeIntBatch(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string bytes = SerializeBatch(b);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(SerializedBatchSize(b)));
}
BENCHMARK(BM_SerdeV2SerializeInts)->Arg(10000);

void BM_SerdeV1DeserializeInts(benchmark::State& state) {
  std::string bytes =
      SerializeBatchV1(MakeIntBatch(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto b = DeserializeBatch(bytes);
    benchmark::DoNotOptimize(b);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_SerdeV1DeserializeInts)->Arg(10000);

void BM_SerdeV2DeserializeInts(benchmark::State& state) {
  std::string bytes =
      SerializeBatch(MakeIntBatch(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto b = DeserializeBatch(bytes);
    benchmark::DoNotOptimize(b);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_SerdeV2DeserializeInts)->Arg(10000);

// Local-shuffle write + read of one partition: legacy copying plane vs
// the shared-buffer plane. Unique key per iteration; retain off so the
// slot is consumed by the read.
void LocalShuffleCopyLoop(benchmark::State& state, bool zero_copy) {
  ShuffleService::Config cfg;
  cfg.machines = 2;
  cfg.retain_for_recovery = false;
  cfg.zero_copy = zero_copy;
  ShuffleService svc(cfg);
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  int task = 0;
  for (auto _ : state) {
    ShuffleSlotKey key{1, 0, task, 1, 0};
    (void)svc.WritePartition(ShuffleKind::kLocal, key,
                             ShuffleBuffer::Copy(payload), 0, false);
    auto got = svc.ReadPartition(ShuffleKind::kLocal, key, 1, 0);
    benchmark::DoNotOptimize(got);
    ++task;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_LocalShuffleLegacyCopy(benchmark::State& state) {
  LocalShuffleCopyLoop(state, /*zero_copy=*/false);
}
BENCHMARK(BM_LocalShuffleLegacyCopy)->Arg(1 << 16)->Arg(1 << 20);

void BM_LocalShuffleSharedBuffer(benchmark::State& state) {
  LocalShuffleCopyLoop(state, /*zero_copy=*/true);
}
BENCHMARK(BM_LocalShuffleSharedBuffer)->Arg(1 << 16)->Arg(1 << 20);

// Replicates the pre-binding HashPartition loop: every key access goes
// through Expr::Evaluate (name lookup per row) and partitions grow with
// unreserved push_backs.
void BM_HashPartitionInterpreted(benchmark::State& state) {
  Batch b = MakeBatch(static_cast<int>(state.range(0)));
  std::vector<ExprPtr> keys = {Expr::Column("k")};
  for (auto _ : state) {
    std::vector<Batch> out(16);
    for (auto& p : out) p.schema = b.schema;
    for (const Row& row : b.rows) {
      Row key;
      bool has_null = false;
      for (const auto& k : keys) {
        auto v = k->Evaluate(b.schema, row);
        has_null = has_null || v->is_null();
        key.push_back(std::move(*v));
      }
      const std::size_t p = has_null ? 0 : HashRow(key) % 16;
      out[p].rows.push_back(row);
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HashPartitionInterpreted)->Arg(1000)->Arg(10000);

void BM_HashPartitionBound(benchmark::State& state) {
  Batch b = MakeBatch(static_cast<int>(state.range(0)));
  std::vector<ExprPtr> keys = {Expr::Column("k")};
  for (auto _ : state) {
    auto parts = HashPartition(b, keys, 16);
    benchmark::DoNotOptimize(parts);
  }
}
BENCHMARK(BM_HashPartitionBound)->Arg(1000)->Arg(10000);

void BM_CacheWorkerPutGet(benchmark::State& state) {
  CacheWorker cw(1LL << 30, "");
  std::string payload(4096, 'x');
  int64_t i = 0;
  for (auto _ : state) {
    ShuffleSlotKey key{1, 0, static_cast<int>(i % 1024), 1,
                       static_cast<int>(i / 1024)};
    (void)cw.Put(key, payload, 1);
    auto got = cw.Get(key);
    benchmark::DoNotOptimize(got);
    ++i;
  }
}
BENCHMARK(BM_CacheWorkerPutGet);

void BM_EventEngine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EventEngine e;
    int64_t count = 0;
    for (int i = 0; i < n; ++i) {
      e.ScheduleAt((i * 37) % n, [&count] { ++count; });
    }
    e.Run();
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EventEngine)->Arg(1000)->Arg(100000);

void BM_ParseQ9(benchmark::State& state) {
  const std::string q9 =
      "select nation, o_year, sum(amount) as sum_profit from ("
      " select n_name as nation, substr(o_orderdate, 1, 4) as o_year,"
      "  l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount"
      " from tpch_supplier s"
      " join tpch_lineitem l on s.s_suppkey = l.l_suppkey"
      " join tpch_partsupp ps on ps.ps_suppkey = l.l_suppkey and "
      "   ps.ps_partkey = l.l_partkey"
      " join tpch_part p on p.p_partkey = l.l_partkey"
      " join tpch_orders o on o.o_orderkey = l.l_orderkey"
      " join tpch_nation n on s.s_nationkey = n.n_nationkey"
      " where p_name like '%green%'"
      ") group by nation, o_year order by nation, o_year desc limit 999999";
  for (auto _ : state) {
    auto stmt = ParseSelect(q9);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseQ9);

void BM_PlanQ9(benchmark::State& state) {
  Catalog catalog;
  TpchConfig cfg;
  cfg.scale_factor = 0.001;
  (void)GenerateTpch(cfg, &catalog);
  auto stmt = ParseSelect(
      "select n_name, count(*) as n from tpch_nation n "
      "join tpch_supplier s on n.n_nationkey = s.s_nationkey "
      "group by n_name order by n desc limit 10");
  for (auto _ : state) {
    auto plan = PlanQuery(**stmt, catalog, PlannerConfig{});
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanQ9);

Batch MakeShuffledBatch(int rows) {
  Batch b = MakeBatch(rows);
  // Shuffle rows deterministically.
  for (std::size_t i = b.rows.size(); i > 1; --i) {
    std::swap(b.rows[i - 1], b.rows[(i * 7919) % i]);
  }
  return b;
}

// Replicates the pre-binding SortOp key pass: one Expr::Evaluate per
// row per key (name lookup each time), then the same permutation sort.
void BM_SortInterpreted(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::vector<SortKey> keys = {SortKey{Expr::Column("k"), true}};
  for (auto _ : state) {
    state.PauseTiming();
    Batch b = MakeShuffledBatch(rows);
    state.ResumeTiming();
    std::vector<Row> keyrows;
    keyrows.reserve(b.rows.size());
    for (const Row& r : b.rows) {
      Row k;
      for (const SortKey& key : keys) {
        k.push_back(*key.expr->Evaluate(b.schema, r));
      }
      keyrows.push_back(std::move(k));
    }
    std::vector<std::size_t> perm(b.rows.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::size_t a, std::size_t c) {
                       for (std::size_t k = 0; k < keys.size(); ++k) {
                         int cmp = keyrows[a][k].Compare(keyrows[c][k]);
                         if (!keys[k].ascending) cmp = -cmp;
                         if (cmp != 0) return cmp < 0;
                       }
                       return false;
                     });
    std::vector<Row> sorted;
    sorted.reserve(b.rows.size());
    for (std::size_t i : perm) sorted.push_back(std::move(b.rows[i]));
    benchmark::DoNotOptimize(sorted);
  }
}
BENCHMARK(BM_SortInterpreted)->Arg(1000)->Arg(20000);

// Same key pass and permutation sort, but with keys bound once.
void BM_SortBound(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  std::vector<SortKey> keys = {SortKey{Expr::Column("k"), true}};
  for (auto _ : state) {
    state.PauseTiming();
    Batch b = MakeShuffledBatch(rows);
    state.ResumeTiming();
    std::vector<BoundExprPtr> bound;
    for (const SortKey& key : keys) bound.push_back(*Bind(key.expr, b.schema));
    std::vector<Row> keyrows;
    keyrows.reserve(b.rows.size());
    Row k;
    for (const Row& r : b.rows) {
      (void)EvalBoundKeys(bound, r, &k);
      keyrows.push_back(k);
    }
    std::vector<std::size_t> perm(b.rows.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::size_t a, std::size_t c) {
                       for (std::size_t kk = 0; kk < keys.size(); ++kk) {
                         int cmp = keyrows[a][kk].Compare(keyrows[c][kk]);
                         if (!keys[kk].ascending) cmp = -cmp;
                         if (cmp != 0) return cmp < 0;
                       }
                       return false;
                     });
    std::vector<Row> sorted;
    sorted.reserve(b.rows.size());
    for (std::size_t i : perm) sorted.push_back(std::move(b.rows[i]));
    benchmark::DoNotOptimize(sorted);
  }
}
BENCHMARK(BM_SortBound)->Arg(1000)->Arg(20000);

void BM_SortOperator(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Batch b = MakeShuffledBatch(rows);
    std::vector<Batch> batches;
    Schema schema = b.schema;
    batches.push_back(std::move(b));
    state.ResumeTiming();
    auto op = MakeSort(MakeBatchSource(schema, std::move(batches)),
                       {SortKey{Expr::Column("k"), true}});
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SortOperator)->Arg(1000)->Arg(20000);

// Replicates the pre-binding aggregate inner loop: group key and agg
// argument both re-resolve their columns by name on every row.
void BM_HashAggregateInterpreted(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  ExprPtr group = Expr::Column("s");
  ExprPtr arg = Expr::Column("v");
  for (auto _ : state) {
    state.PauseTiming();
    Batch b = MakeBatch(rows);
    state.ResumeTiming();
    std::unordered_map<std::string, double> table;
    for (const Row& r : b.rows) {
      Value k = *group->Evaluate(b.schema, r);
      Value v = *arg->Evaluate(b.schema, r);
      table[k.str()] += v.AsDouble();
    }
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_HashAggregateInterpreted)->Arg(1000)->Arg(20000);

// Same table update, but group key and argument bound once.
void BM_HashAggregateBound(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  ExprPtr group = Expr::Column("s");
  ExprPtr arg = Expr::Column("v");
  for (auto _ : state) {
    state.PauseTiming();
    Batch b = MakeBatch(rows);
    state.ResumeTiming();
    auto bg = *Bind(group, b.schema);
    auto ba = *Bind(arg, b.schema);
    std::unordered_map<std::string, double> table;
    for (const Row& r : b.rows) {
      Value k = *bg->Evaluate(r);
      Value v = *ba->Evaluate(r);
      table[k.str()] += v.AsDouble();
    }
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_HashAggregateBound)->Arg(1000)->Arg(20000);

// ---- Flat hash kernels (PR 5): legacy row-map vs swiss-table pairs --
//
// Each pair runs the pre-flat-table operator body (frozen verbatim from
// git history: node-based std::unordered_map/_multimap keyed by boxed
// Row, HashRow identity hashing, a fresh boxed key Row per build/probe
// row) against the live operator body (KeyEncoder + FlatKeyTable + the
// shared wyhash-style mixer), inline over identical prebuilt batches.
// Surrounding work — draining the build input, aggregate state updates,
// output emission — is the same on both sides, so the delta is the
// kernel swap itself.

struct BenchRowHash {
  std::size_t operator()(const Row& r) const { return HashRow(r); }
};
struct BenchRowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

bool BenchKeyHasNull(const Row& k) {
  for (const Value& v : k) {
    if (v.is_null()) return true;
  }
  return false;
}

// The legacy operators boxed every key into a fresh Row (EvalKeys in
// the pre-PR operators.cc).
Row BenchEvalKeys(const std::vector<BoundExprPtr>& keys, const Row& row) {
  Row k;
  k.reserve(keys.size());
  for (const BoundExprPtr& e : keys) k.push_back(*e->Evaluate(row));
  return k;
}

// Verbatim replica of the operator-internal AggState's SUM path, shared
// by both aggregate bench sides so state-update cost cancels out.
struct BenchAggState {
  double sum = 0.0;
  int64_t count = 0;
  bool all_int = true;
  Value min;
  Value max;

  void UpdateSum(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      sum += v.AsDouble();
      if (!v.is_int64()) all_int = false;
    } else {
      all_int = false;
    }
    if (min.is_null() || v.Compare(min) < 0) min = v;
    if (max.is_null() || v.Compare(max) > 0) max = v;
  }

  Value FinishSum() const {
    if (count == 0) return Value::Null();
    return all_int ? Value(static_cast<int64_t>(sum)) : Value(sum);
  }
};

// Int64-keyed batch: `distinct` distinct keys cycling over `rows` rows
// (duplicates exercise the join chains and aggregate groups), one
// float64 payload.
Batch MakeIntKeyBatch(int rows, int distinct) {
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}, {"v", DataType::kFloat64}});
  b.rows.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    b.rows.push_back(
        {Value(static_cast<int64_t>((i * 7919) % distinct)), Value(i * 0.5)});
  }
  return b;
}

// Composite-int64-keyed batch (the realistic join/group-by shape —
// TPC-H joins on (orderkey, ...), Q9 groups by (nation, year)): two
// int64 key columns forming `distinct` distinct pairs, one float64
// payload.
Batch MakeIntPairKeyBatch(int rows, int distinct) {
  Batch b;
  b.schema = Schema({{"k1", DataType::kInt64},
                     {"k2", DataType::kInt64},
                     {"v", DataType::kFloat64}});
  b.rows.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    const int64_t k = (i * 7919) % distinct;
    b.rows.push_back({Value(k), Value(k * 31 + 7), Value(i * 0.5)});
  }
  return b;
}

constexpr int kJoinRows = 10000;
constexpr int kAggDistinct = 512;

// Legacy HashJoinOp::Open body: per build row a boxed key Row, a map
// node, and the row moved into it; probe via equal_range. PK-FK shape:
// the build side's composite keys are unique, every probe matches
// exactly once.
void BM_HashJoinRowMapInt(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Batch left = MakeIntPairKeyBatch(rows, rows);
  Batch right = MakeIntPairKeyBatch(rows, rows);
  std::vector<ExprPtr> keys = {Expr::Column("k1"), Expr::Column("k2")};
  auto bound_left = *BindAll(keys, left.schema);
  auto bound_right = *BindAll(keys, right.schema);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Row> build_input = right.rows;  // the drained build side
    state.ResumeTiming();
    std::unordered_multimap<Row, Row, BenchRowHash, BenchRowEq> build;
    for (Row& r : build_input) {
      Row key = BenchEvalKeys(bound_right, r);
      if (BenchKeyHasNull(key)) continue;
      build.emplace(std::move(key), std::move(r));
    }
    std::vector<Row> out;
    for (const Row& l : left.rows) {
      Row key = BenchEvalKeys(bound_left, l);
      if (BenchKeyHasNull(key)) continue;
      auto [lo, hi] = build.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        Row o = l;
        o.insert(o.end(), it->second.begin(), it->second.end());
        out.push_back(std::move(o));
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_HashJoinRowMapInt)->Arg(1000)->Arg(kJoinRows);

// Live HashJoinOp::Open body: build rows stay in the drained vector,
// encoded keys in the flat table, duplicates chained through next_row.
void BM_HashJoinFlatInt(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Batch left = MakeIntPairKeyBatch(rows, rows);
  Batch right = MakeIntPairKeyBatch(rows, rows);
  std::vector<ExprPtr> keys = {Expr::Column("k1"), Expr::Column("k2")};
  auto bound_left = *BindAll(keys, left.schema);
  auto bound_right = *BindAll(keys, right.schema);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Row> build_rows = right.rows;  // the drained build side
    state.ResumeTiming();
    FlatKeyTable table(build_rows.size());
    std::vector<int32_t> chain_head;
    std::vector<int32_t> chain_tail;
    std::vector<int32_t> next_row(build_rows.size(), -1);
    KeyEncoder enc;
    std::vector<uint32_t> rcols, lcols;
    (void)KeyEncoder::ColumnOrdinals(bound_right, &rcols);
    (void)KeyEncoder::ColumnOrdinals(bound_left, &lcols);
    for (std::size_t i = 0; i < build_rows.size(); ++i) {
      bool has_null = false;
      std::string_view bytes;
      (void)enc.EncodeColumns(build_rows[i], rcols, &bytes, &has_null);
      if (has_null) continue;
      const FlatKeyTable::FindResult r =
          table.FindOrInsert(bytes, KeyEncoder::HashEncoded(bytes));
      const int32_t row = static_cast<int32_t>(i);
      if (r.inserted) {
        chain_head.push_back(row);
        chain_tail.push_back(row);
      } else {
        next_row[chain_tail[r.index]] = row;
        chain_tail[r.index] = row;
      }
    }
    std::vector<Row> out;
    for (const Row& l : left.rows) {
      bool has_null = false;
      std::string_view bytes;
      (void)enc.EncodeColumns(l, lcols, &bytes, &has_null);
      if (has_null) continue;
      const int64_t dense = table.Find(bytes, KeyEncoder::HashEncoded(bytes));
      if (dense < 0) continue;
      for (int32_t r = chain_head[static_cast<std::size_t>(dense)]; r >= 0;
           r = next_row[r]) {
        const Row& b = build_rows[r];
        Row o;
        o.reserve(l.size() + b.size());
        o.insert(o.end(), l.begin(), l.end());
        o.insert(o.end(), b.begin(), b.end());
        out.push_back(std::move(o));
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_HashJoinFlatInt)->Arg(1000)->Arg(kJoinRows);

// Legacy HashAggregateOp body: Row-keyed unordered_map of AggState
// vectors, first-seen key order, output looked up back through the map.
// Args are {rows, distinct groups}: 512 groups is the probe-heavy
// regime, rows-scale groups the insert-heavy (post-shuffle) regime.
void BM_HashAggregateRowMapInt(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int distinct = static_cast<int>(state.range(1));
  Batch b = MakeIntPairKeyBatch(rows, distinct);
  std::vector<ExprPtr> groups = {Expr::Column("k1"), Expr::Column("k2")};
  auto bound_groups = *BindAll(groups, b.schema);
  auto bound_arg = *Bind(Expr::Column("v"), b.schema);
  for (auto _ : state) {
    std::unordered_map<Row, std::vector<BenchAggState>, BenchRowHash,
                       BenchRowEq>
        table;
    std::vector<Row> key_order;
    Row key;
    for (const Row& r : b.rows) {
      (void)EvalBoundKeys(bound_groups, r, &key);
      auto it = table.find(key);
      if (it == table.end()) {
        it = table.emplace(key, std::vector<BenchAggState>(1)).first;
        key_order.push_back(key);
      }
      it->second[0].UpdateSum(*bound_arg->Evaluate(r));
    }
    std::vector<Row> out;
    for (const Row& k : key_order) {
      const auto& states = table[k];
      Row o = k;
      o.push_back(states[0].FinishSum());
      out.push_back(std::move(o));
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_HashAggregateRowMapInt)
    ->Args({20000, kAggDistinct})
    ->Args({20000, 16384});

// Live HashAggregateOp body: flat table plus dense state/key vectors
// addressed by the key's table index.
void BM_HashAggregateFlatInt(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int distinct = static_cast<int>(state.range(1));
  Batch b = MakeIntPairKeyBatch(rows, distinct);
  std::vector<ExprPtr> groups = {Expr::Column("k1"), Expr::Column("k2")};
  auto bound_groups = *BindAll(groups, b.schema);
  auto bound_arg = *Bind(Expr::Column("v"), b.schema);
  for (auto _ : state) {
    FlatKeyTable table;
    std::vector<BenchAggState> states;
    std::vector<Row> group_keys;
    KeyEncoder enc;
    std::vector<uint32_t> gcols;
    (void)KeyEncoder::ColumnOrdinals(bound_groups, &gcols);
    for (const Row& r : b.rows) {
      bool has_null = false;
      std::string_view bytes;
      (void)enc.EncodeColumns(r, gcols, &bytes, &has_null);
      const FlatKeyTable::FindResult fr =
          table.FindOrInsert(bytes, KeyEncoder::HashEncoded(bytes));
      if (fr.inserted) {
        states.emplace_back();
        Row gk;
        gk.reserve(gcols.size());
        for (const uint32_t c : gcols) gk.push_back(r[c]);
        group_keys.push_back(std::move(gk));
      }
      states[fr.index].UpdateSum(*bound_arg->Evaluate(r));
    }
    std::vector<Row> out;
    out.reserve(group_keys.size());
    for (std::size_t g = 0; g < group_keys.size(); ++g) {
      Row o = std::move(group_keys[g]);
      o.push_back(states[g].FinishSum());
      out.push_back(std::move(o));
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_HashAggregateFlatInt)
    ->Args({20000, kAggDistinct})
    ->Args({20000, 16384});

// Legacy HashPartition body: identity HashRow % n (plus the same
// counting pass and reserve the live version does).
void BM_HashPartitionRowHashInt(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Batch b = MakeIntKeyBatch(rows, rows);
  std::vector<ExprPtr> keys = {Expr::Column("k")};
  auto bound = *BindAll(keys, b.schema);
  constexpr std::size_t n = 16;
  for (auto _ : state) {
    std::vector<std::size_t> dest(b.rows.size(), 0);
    std::vector<std::size_t> counts(n, 0);
    Row key;
    for (std::size_t i = 0; i < b.rows.size(); ++i) {
      (void)EvalBoundKeys(bound, b.rows[i], &key);
      const std::size_t p = HashRow(key) % n;
      dest[i] = p;
      ++counts[p];
    }
    std::vector<Batch> out(n);
    for (std::size_t p = 0; p < n; ++p) {
      out[p].schema = b.schema;
      out[p].rows.reserve(counts[p]);
    }
    for (std::size_t i = 0; i < b.rows.size(); ++i) {
      out[dest[i]].rows.push_back(b.rows[i]);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_HashPartitionRowHashInt)->Arg(1000)->Arg(10000);

// Live HashPartition body: normalized hashing (no byte materialization)
// + the shared mixer + multiply-shift range reduction.
void BM_HashPartitionFlatInt(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  Batch b = MakeIntKeyBatch(rows, rows);
  std::vector<ExprPtr> keys = {Expr::Column("k")};
  auto bound = *BindAll(keys, b.schema);
  constexpr std::size_t n = 16;
  std::vector<uint32_t> cols;
  (void)KeyEncoder::ColumnOrdinals(bound, &cols);
  for (auto _ : state) {
    std::vector<std::size_t> dest(b.rows.size(), 0);
    std::vector<std::size_t> counts(n, 0);
    for (std::size_t i = 0; i < b.rows.size(); ++i) {
      bool has_null = false;
      uint64_t h = 0;
      (void)KeyEncoder::HashColumns(b.rows[i], cols, &h, &has_null);
      const std::size_t p =
          has_null ? 0 : RangeReduce(h, static_cast<uint32_t>(n));
      dest[i] = p;
      ++counts[p];
    }
    std::vector<Batch> out(n);
    for (std::size_t p = 0; p < n; ++p) {
      out[p].schema = b.schema;
      out[p].rows.reserve(counts[p]);
    }
    for (std::size_t i = 0; i < b.rows.size(); ++i) {
      out[dest[i]].rows.push_back(b.rows[i]);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_HashPartitionFlatInt)->Arg(1000)->Arg(10000);

void BM_HashAggregateOperator(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Batch b = MakeBatch(rows);
    std::vector<Batch> batches;
    Schema schema = b.schema;
    batches.push_back(std::move(b));
    state.ResumeTiming();
    auto op = MakeHashAggregate(
        MakeBatchSource(schema, std::move(batches)), {Expr::Column("s")},
        {"s"}, {AggSpec{AggKind::kSum, Expr::Column("v"), "total"}});
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_HashAggregateOperator)->Arg(1000)->Arg(20000);

// ---- Columnar-vs-row kernel pairs -----------------------------------
// Each BM_Vec* pair runs the same logical work through the row operator
// and through its vectorized twin (typed ColumnVectors + selection
// vectors); the speedup columns in EXPERIMENTS.md come from these.

Batch MakeVecBatch(int rows) {
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64},
                     {"v", DataType::kFloat64},
                     {"s", DataType::kString}});
  b.rows.reserve(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    b.rows.push_back({Value(static_cast<int64_t>((i * 7919) % 1000)),
                      Value(i * 0.125),
                      Value("s" + std::to_string(i % 32))});
  }
  return b;
}

ExprPtr VecPredicate() {
  return Expr::Binary(BinaryOp::kGt, Expr::Column("k"),
                      Expr::Literal(Value(int64_t{500})));
}

void BM_VecFilterRow(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  ExprPtr pred = VecPredicate();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Batch> batches;
    batches.push_back(base);
    state.ResumeTiming();
    auto op = MakeFilter(MakeBatchSource(base.schema, std::move(batches)),
                         pred);
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_VecFilterRow)->Arg(4096)->Arg(65536);

void BM_VecFilterColumnar(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  const ColumnBatch cbase = *ToColumnBatch(base);
  ExprPtr pred = VecPredicate();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ColumnBatch> batches;
    batches.push_back(cbase);
    state.ResumeTiming();
    auto op = MakeFilter(
        MakeColumnBatchSource(cbase.schema, std::move(batches)), pred);
    // The columnar filter emits a selection vector over the input's
    // storage — no survivor rows are copied anywhere.
    std::size_t kept = 0;
    (void)op->Open();
    while (true) {
      auto nxt = op->NextColumnar();
      if (!nxt.ok() || !nxt->has_value()) break;
      kept += (*nxt)->num_rows();
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_VecFilterColumnar)->Arg(4096)->Arg(65536);

void BM_VecProjectRow(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  std::vector<ExprPtr> exprs = {
      Expr::Binary(BinaryOp::kAdd, Expr::Column("k"),
                   Expr::Literal(Value(int64_t{1}))),
      Expr::Binary(BinaryOp::kMul, Expr::Column("v"), Expr::Column("v"))};
  std::vector<std::string> names = {"k1", "v2"};
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Batch> batches;
    batches.push_back(base);
    state.ResumeTiming();
    auto op = MakeProject(MakeBatchSource(base.schema, std::move(batches)),
                          exprs, names);
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_VecProjectRow)->Arg(4096)->Arg(65536);

void BM_VecProjectColumnar(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  const ColumnBatch cbase = *ToColumnBatch(base);
  std::vector<ExprPtr> exprs = {
      Expr::Binary(BinaryOp::kAdd, Expr::Column("k"),
                   Expr::Literal(Value(int64_t{1}))),
      Expr::Binary(BinaryOp::kMul, Expr::Column("v"), Expr::Column("v"))};
  std::vector<std::string> names = {"k1", "v2"};
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ColumnBatch> batches;
    batches.push_back(cbase);
    state.ResumeTiming();
    auto op = MakeProject(
        MakeColumnBatchSource(cbase.schema, std::move(batches)), exprs,
        names);
    (void)op->Open();
    while (true) {
      auto nxt = op->NextColumnar();
      if (!nxt.ok() || !nxt->has_value()) break;
      benchmark::DoNotOptimize(*nxt);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_VecProjectColumnar)->Arg(4096)->Arg(65536);

void BM_VecHashAggregateRow(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Batch> batches;
    batches.push_back(base);
    state.ResumeTiming();
    auto op = MakeHashAggregate(
        MakeBatchSource(base.schema, std::move(batches)),
        {Expr::Column("s")}, {"s"},
        {AggSpec{AggKind::kSum, Expr::Column("k"), "sum_k"},
         AggSpec{AggKind::kCount, nullptr, "cnt"}});
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_VecHashAggregateRow)->Arg(4096)->Arg(65536);

void BM_VecHashAggregateColumnar(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  const ColumnBatch cbase = *ToColumnBatch(base);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ColumnBatch> batches;
    batches.push_back(cbase);
    state.ResumeTiming();
    auto op = MakeHashAggregate(
        MakeColumnBatchSource(cbase.schema, std::move(batches)),
        {Expr::Column("s")}, {"s"},
        {AggSpec{AggKind::kSum, Expr::Column("k"), "sum_k"},
         AggSpec{AggKind::kCount, nullptr, "cnt"}});
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_VecHashAggregateColumnar)->Arg(4096)->Arg(65536);

void BM_VecHashPartitionRow(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  std::vector<ExprPtr> keys = {Expr::Column("k")};
  for (auto _ : state) {
    auto parts = HashPartition(base, keys, 16);
    benchmark::DoNotOptimize(parts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_VecHashPartitionRow)->Arg(4096)->Arg(65536);

void BM_VecHashPartitionColumnar(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const ColumnBatch cbase = *ToColumnBatch(MakeVecBatch(rows));
  std::vector<ExprPtr> keys = {Expr::Column("k")};
  for (auto _ : state) {
    auto parts = HashPartitionColumnar(cbase, keys, 16);
    benchmark::DoNotOptimize(parts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_VecHashPartitionColumnar)->Arg(4096)->Arg(65536);

// The shuffle-read boundary: wire-format v2 decoded into boxed rows vs
// straight into typed columns (near-memcpy for the int-heavy shape).
void BM_VecDeserializeIntsColumnar(benchmark::State& state) {
  std::string bytes =
      SerializeBatch(MakeIntBatch(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto b = DeserializeColumnBatch(bytes);
    benchmark::DoNotOptimize(b);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_VecDeserializeIntsColumnar)->Arg(10000);

void BM_VecSerializeIntsColumnar(benchmark::State& state) {
  const ColumnBatch cb =
      *ToColumnBatch(MakeIntBatch(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    std::string bytes = SerializeColumnBatch(cb);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(SerializeColumnBatch(cb).size()));
}
BENCHMARK(BM_VecSerializeIntsColumnar)->Arg(10000);

// ---------------------------------------------------------------------
// PR 7: morsel-driven streaming. Each BM_Morsel* pair runs the same
// logical work row-at-a-time and through the native columnar build
// (sort / window / merge join), plus the whole-slice vs morselized
// pipeline shapes; the peak_rows counter reports resident rows at the
// source boundary (slice size vs one morsel).

void BM_MorselSortRow(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  std::vector<SortKey> keys;
  keys.push_back({Expr::Column("s"), true});
  keys.push_back({Expr::Column("k"), false});
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Batch> batches;
    batches.push_back(base);
    state.ResumeTiming();
    auto op = MakeSort(MakeBatchSource(base.schema, std::move(batches)), keys);
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselSortRow)->Arg(4096)->Arg(65536);

void BM_MorselSortColumnar(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const ColumnBatch cbase = *ToColumnBatch(MakeVecBatch(rows));
  std::vector<SortKey> keys;
  keys.push_back({Expr::Column("s"), true});
  keys.push_back({Expr::Column("k"), false});
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ColumnBatch> batches;
    batches.push_back(cbase);
    state.ResumeTiming();
    // The columnar sort emits a permutation selection over the input
    // storage — rows are never gathered.
    auto op = MakeSort(
        MakeColumnBatchSource(cbase.schema, std::move(batches)), keys);
    (void)op->Open();
    auto out = op->NextColumnar();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselSortColumnar)->Arg(4096)->Arg(65536);

void BM_MorselWindowRow(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch base = MakeVecBatch(rows);
  std::vector<ExprPtr> part = {Expr::Column("s")};
  std::vector<SortKey> order;
  order.push_back({Expr::Column("k"), true});
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Batch> batches;
    batches.push_back(base);
    state.ResumeTiming();
    auto op = MakeWindow(MakeBatchSource(base.schema, std::move(batches)),
                         part, order, WindowFunc::kSum, Expr::Column("v"),
                         "w");
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselWindowRow)->Arg(4096)->Arg(65536);

void BM_MorselWindowColumnar(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const ColumnBatch cbase = *ToColumnBatch(MakeVecBatch(rows));
  std::vector<ExprPtr> part = {Expr::Column("s")};
  std::vector<SortKey> order;
  order.push_back({Expr::Column("k"), true});
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ColumnBatch> batches;
    batches.push_back(cbase);
    state.ResumeTiming();
    auto op = MakeWindow(
        MakeColumnBatchSource(cbase.schema, std::move(batches)), part, order,
        WindowFunc::kSum, Expr::Column("v"), "w");
    (void)op->Open();
    auto out = op->NextColumnar();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselWindowColumnar)->Arg(4096)->Arg(65536);

// Sorted-key inputs for the merge join (dup keys + gaps).
Batch MakeMorselSortedBatch(int rows, const char* prefix) {
  Batch b;
  b.schema = Schema({{"k", DataType::kInt64}, {"p", DataType::kString}});
  int64_t k = 0;
  for (int i = 0; i < rows; ++i) {
    k += (i * 2654435761u >> 13) % 3 == 0 ? 1 : 0;
    b.rows.push_back({Value(k), Value(prefix + std::to_string(i % 64))});
  }
  return b;
}

void BM_MorselMergeJoinRow(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const Batch left = MakeMorselSortedBatch(rows, "L");
  const Batch right = MakeMorselSortedBatch(rows / 2, "R");
  std::vector<ExprPtr> lk = {Expr::Column("k")};
  std::vector<ExprPtr> rk = {Expr::Column("k")};
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<Batch> lb, rb;
    lb.push_back(left);
    rb.push_back(right);
    state.ResumeTiming();
    auto op = MakeMergeJoin(MakeBatchSource(left.schema, std::move(lb)),
                            MakeBatchSource(right.schema, std::move(rb)), lk,
                            rk);
    auto out = CollectAll(op.get());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselMergeJoinRow)->Arg(4096)->Arg(65536);

void BM_MorselMergeJoinColumnar(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const ColumnBatch left = *ToColumnBatch(MakeMorselSortedBatch(rows, "L"));
  const ColumnBatch right =
      *ToColumnBatch(MakeMorselSortedBatch(rows / 2, "R"));
  std::vector<ExprPtr> lk = {Expr::Column("k")};
  std::vector<ExprPtr> rk = {Expr::Column("k")};
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<ColumnBatch> lb, rb;
    lb.push_back(left);
    rb.push_back(right);
    state.ResumeTiming();
    auto op = MakeMergeJoin(
        MakeColumnBatchSource(left.schema, std::move(lb)),
        MakeColumnBatchSource(right.schema, std::move(rb)), lk, rk);
    (void)op->Open();
    auto out = op->NextColumnar();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselMergeJoinColumnar)->Arg(4096)->Arg(65536);

// The scan-task pipeline shapes: whole-slice (Table::TaskSlice +
// ToColumnBatch + filter/project over one big batch) vs morselized
// (TableMorselSource streaming 1K-row morsels through the same steps).
// peak_rows is the resident-row footprint at the source boundary.
std::shared_ptr<Table> MakeMorselTable(int rows) {
  auto t = std::make_shared<Table>();
  t->name = "bench";
  t->schema = Schema({{"k", DataType::kInt64},
                      {"v", DataType::kFloat64},
                      {"s", DataType::kString}});
  Batch b = MakeVecBatch(rows);
  t->rows = std::move(b.rows);
  return t;
}

std::vector<MorselStep> MorselBenchSteps() {
  std::vector<MorselStep> steps;
  MorselStep f;
  f.kind = MorselStep::Kind::kFilter;
  f.predicate = VecPredicate();
  steps.push_back(std::move(f));
  MorselStep p;
  p.kind = MorselStep::Kind::kProject;
  p.exprs = {Expr::Binary(BinaryOp::kAdd, Expr::Column("k"),
                          Expr::Literal(Value(int64_t{7}))),
             Expr::Binary(BinaryOp::kMul, Expr::Column("v"),
                          Expr::Column("v"))};
  p.names = {"k7", "v2"};
  steps.push_back(std::move(p));
  return steps;
}

std::size_t DrainMorselBench(PhysicalOperator* op) {
  (void)op->Open();
  std::size_t kept = 0;
  while (true) {
    auto nxt = op->NextColumnar();
    if (!nxt.ok() || !nxt->has_value()) break;
    kept += (*nxt)->num_rows();
  }
  return kept;
}

void BM_MorselPipelineWholeSlice(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  auto table = MakeMorselTable(rows);
  const auto steps = MorselBenchSteps();
  for (auto _ : state) {
    Batch slice = table->TaskSlice(0, 1);
    auto cb = ToColumnBatch(slice);
    std::vector<ColumnBatch> batches;
    batches.push_back(*std::move(cb));
    auto op = MakeProject(
        MakeFilter(MakeColumnBatchSource(table->schema, std::move(batches)),
                   steps[0].predicate),
        steps[1].exprs, steps[1].names);
    benchmark::DoNotOptimize(DrainMorselBench(op.get()));
  }
  state.counters["peak_rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselPipelineWholeSlice)->Arg(65536)->Arg(262144);

void BM_MorselPipelineStreamed(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  auto table = MakeMorselTable(rows);
  for (auto _ : state) {
    auto op = MakeParallelMorselPipeline(
        MakeTableMorselSource(table, 0, 1, table->schema, kDefaultMorselRows),
        MorselBenchSteps(), nullptr, 1);
    benchmark::DoNotOptimize(DrainMorselBench(op.get()));
  }
  state.counters["peak_rows"] = static_cast<double>(kDefaultMorselRows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselPipelineStreamed)->Arg(65536)->Arg(262144);

void BM_MorselPipelineParallel(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int lanes = static_cast<int>(state.range(1));
  auto table = MakeMorselTable(rows);
  ThreadPool pool(static_cast<std::size_t>(lanes));
  for (auto _ : state) {
    auto op = MakeParallelMorselPipeline(
        MakeTableMorselSource(table, 0, 1, table->schema, kDefaultMorselRows),
        MorselBenchSteps(), &pool, lanes);
    benchmark::DoNotOptimize(DrainMorselBench(op.get()));
  }
  state.counters["peak_rows"] =
      static_cast<double>(kDefaultMorselRows) * 2 * lanes;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows);
}
BENCHMARK(BM_MorselPipelineParallel)
    ->Args({262144, 2})
    ->Args({262144, 4});

}  // namespace
}  // namespace swift

BENCHMARK_MAIN();
