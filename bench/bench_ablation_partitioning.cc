// Ablation (not a paper figure): isolates the scheduling-granularity
// choice by running the SAME workload with the SAME in-memory adaptive
// shuffle and warm launch under all four partitioning policies. Paper
// comparisons (Figs. 10/11) vary shuffle medium and launch together;
// this ablation shows how much graphlet scheduling alone buys.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "trace/production_trace.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Ablation", "Partitioning policy alone (same shuffle, same launch)",
         "expectation: whole-job worst (gang idle), bubble pays its "
         "partitioning overhead + idle, graphlet ~ per-stage. Swift's "
         "full win over Spark (Fig. 9) additionally needs warm launch + "
         "memory shuffle, which this ablation holds fixed");
  TraceConfig tc;
  tc.num_jobs = 1500;
  tc.mean_interarrival = 0.0;
  tc.extra_stage_p = 0.68;
  auto jobs = GenerateProductionTrace(tc);

  struct Policy {
    const char* name;
    SchedulingPolicy policy;
  };
  const Policy policies[] = {
      {"swift-graphlet", SchedulingPolicy::kSwiftGraphlet},
      {"bubble-datasize", SchedulingPolicy::kDataSizeBubble},
      {"per-stage", SchedulingPolicy::kPerStage},
      {"whole-job", SchedulingPolicy::kWholeJob},
  };
  Row({"Policy", "Makespan(s)", "MeanLat(s)", "P90Lat(s)", "IdleRatio%"});
  for (const Policy& p : policies) {
    SimConfig cfg = MakeSwiftSimConfig(100, 10);
    cfg.policy = p.policy;
    SimReport report = RunTrace(cfg, jobs);
    std::vector<double> lat, idle;
    for (const SimJobResult& r : report.jobs) {
      if (!r.completed) continue;
      lat.push_back(r.Latency());
      idle.push_back(100.0 * r.mean_idle_ratio);
    }
    Row({p.name, F(report.makespan, 1), F(Mean(lat), 1),
         F(Quantile(lat, 0.9), 1), F(Mean(idle), 2)});
  }
  return 0;
}
