// Multi-tenant service load benchmark (DESIGN.md Sec. 16): the Fig. 8
// arrival trace replayed open-loop through the JobService at increasing
// driver counts. "before" is drivers=1 — the pre-service contract where
// the runtime executed one RunPlan at a time, so the makespan is the
// serial sum of job runtimes. The concurrent variants interleave jobs
// over ONE shared executor pool through the GangArbiter; makespan drops
// while weighted fair queuing keeps per-tenant executor grants balanced
// and the latency tail bounded. Feeds BENCH_PR9.json.

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/tpch.h"
#include "service/job_service.h"
#include "service/trace_replay.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

constexpr int kJobs = 64;

std::vector<std::string> SqlPool() {
  std::vector<std::string> pool;
  for (int q : RunnableTpchQueries()) {
    auto sql = TpchQuerySql(q);
    if (sql.ok()) pool.push_back(*sql);
  }
  return pool;
}

struct Outcome {
  TraceReplayReport report;
  double wall_ms = 0.0;
  int64_t preemptions = 0;
  std::map<std::string, double> tenant_units;
  std::map<std::string, int> tenant_completed;
};

Outcome RunVariant(int drivers, const std::vector<std::string>& pool) {
  JobServiceConfig cfg;
  cfg.max_concurrent_jobs = drivers;
  cfg.admission_queue_capacity = kJobs;  // nothing shed: latencies comparable
  cfg.runtime.machines = 4;
  cfg.runtime.executors_per_machine = 16;
  cfg.runtime.worker_threads = 4;
  JobService service(cfg);
  TpchConfig tpch;
  tpch.scale_factor = 0.001;
  Status st = GenerateTpch(tpch, service.catalog());
  if (!st.ok()) {
    std::fprintf(stderr, "tpch gen failed: %s\n", st.ToString().c_str());
    return Outcome{};
  }

  TraceReplayConfig rc;
  rc.trace.num_jobs = kJobs;
  rc.sql_pool = pool;
  const auto t0 = std::chrono::steady_clock::now();
  auto report = ReplayTrace(&service, rc);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  if (!report.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 report.status().ToString().c_str());
    return Outcome{};
  }
  Outcome out;
  out.report = *std::move(report);
  out.wall_ms = wall_ms;
  out.preemptions = service.arbiter()->preemptions();
  out.tenant_units = service.arbiter()->TenantGangUnits();
  out.tenant_completed = out.report.completed_by_tenant;
  return out;
}

int Run() {
  bench::Header(
      "Service load", "Fig. 8 trace replayed through the multi-tenant service",
      "one shared executor pool, fair-share gang arbitration: concurrency "
      "cuts makespan without starving any tenant (ROADMAP item 2)");

  const std::vector<std::string> pool = SqlPool();
  if (pool.empty()) {
    std::fprintf(stderr, "no runnable TPC-H queries\n");
    return 1;
  }

  bench::Row({"drivers", "wall-ms", "jobs/s", "p50-ms", "p99-ms", "p999-ms",
              "completed", "preempt"});
  Outcome widest;
  for (int drivers : {1, 2, 4, 8}) {
    const Outcome o = RunVariant(drivers, pool);
    bench::Row({std::to_string(drivers), bench::F(o.wall_ms, 1),
                bench::F(1000.0 * o.report.completed / o.wall_ms, 1),
                bench::F(o.report.latency_p50 * 1000.0, 1),
                bench::F(o.report.latency_p99 * 1000.0, 1),
                bench::F(o.report.latency_p999 * 1000.0, 1),
                std::to_string(o.report.completed),
                std::to_string(o.preemptions)});
    if (drivers == 8) widest = o;
  }

  // Fairness cut of the widest run: the executor-grant share each tenant
  // received vs the share of jobs it submitted. Equal weights, so a
  // healthy arbiter keeps grant share near submit share.
  double total_units = 0.0;
  for (const auto& [tenant, units] : widest.tenant_units) total_units += units;
  std::printf("\nper-tenant fairness at drivers=8 (equal weights):\n");
  bench::Row({"tenant", "submitted", "completed", "grant-share"});
  for (const auto& [tenant, units] : widest.tenant_units) {
    const auto sub = widest.report.submitted_by_tenant.find(tenant);
    const auto done = widest.tenant_completed.find(tenant);
    bench::Row(
        {tenant,
         std::to_string(
             sub == widest.report.submitted_by_tenant.end() ? 0 : sub->second),
         std::to_string(done == widest.tenant_completed.end() ? 0
                                                              : done->second),
         bench::F(total_units > 0 ? units / total_units : 0.0, 3)});
  }
  std::printf(
      "\n%d trace jobs, 4 tenants, open-loop arrivals, TPC-H sf 0.001 on a\n"
      "4-machine x 16-executor in-process cluster. drivers=1 is the\n"
      "pre-service serial baseline; wider variants share the same pool.\n",
      kJobs);
  return 0;
}

}  // namespace
}  // namespace swift

int main() { return swift::Run(); }
