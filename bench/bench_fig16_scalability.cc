// Reproduces Fig. 16: strong scaling of Swift from 10,000 to 140,000
// executors replaying the same production-trace workload.
//
// Paper: near-linear speedup across the whole range.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "trace/production_trace.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 16", "Strong scaling 10k -> 140k executors",
         "near-linear speedup (ideal = x-fold executors)");
  // A heavy replay that saturates even the largest configuration.
  TraceConfig tc;
  tc.num_jobs = 20000;
  tc.mean_interarrival = 0.0;
  tc.tasks_log_mu = 4.0;       // wider jobs so 140k executors stay busy
  tc.runtime_log_sigma = 0.5;  // short critical paths: work-bound run
  tc.max_stages = 8;
  auto jobs = GenerateProductionTrace(tc);

  const int executors[] = {10000, 20000, 40000, 80000, 120000, 140000};
  double base_makespan = 0.0;
  Row({"Executors", "Makespan(s)", "Speedup", "Ideal"});
  for (int e : executors) {
    SimConfig cfg = MakeSwiftSimConfig(e / 40, 40);
    SimReport report = RunTrace(cfg, jobs);
    if (e == executors[0]) base_makespan = report.makespan;
    Row({std::to_string(e), F(report.makespan, 1),
         F(base_makespan / report.makespan, 2),
         F(static_cast<double>(e) / executors[0], 2)});
  }
  return 0;
}
