// Reproduces Fig. 15: end-to-end slowdown of the production trace with
// real-world-distributed failures, whole-job restart vs Swift's
// fine-grained recovery (quartile method, non-failure run = 100).
//
// Paper: job restart slows jobs down by ~45% on average; Swift's
// fine-grained recovery by only ~5%.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "trace/production_trace.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 15", "Trace replay with trace-distributed failures",
         "restart +45% average slowdown; Swift fine-grained +5%");
  TraceConfig tc;
  tc.num_jobs = 1000;
  tc.mean_interarrival = 0.3;
  auto clean_jobs = GenerateProductionTrace(tc);
  auto failed_jobs = clean_jobs;
  FailureTraceConfig fc;
  fc.failure_job_fraction = 0.7;  // a failure-heavy day
  InjectTraceFailures(fc, &failed_jobs);

  SimConfig swift_cfg = MakeSwiftSimConfig(400, 40);
  SimConfig restart_cfg = swift_cfg;
  restart_cfg.fine_grained_recovery = false;

  SimReport base = RunTrace(swift_cfg, clean_jobs);
  SimReport fine = RunTrace(swift_cfg, failed_jobs);
  SimReport restart = RunTrace(restart_cfg, failed_jobs);

  auto slowdowns = [&](const SimReport& r) {
    std::vector<double> out;
    for (std::size_t i = 0; i < base.jobs.size(); ++i) {
      if (!base.jobs[i].completed || !r.jobs[i].completed) continue;
      const double b = base.jobs[i].Latency();
      if (b <= 0) continue;
      out.push_back(100.0 * r.jobs[i].Latency() / b);
    }
    return out;
  };
  const QuartileSummary fq = Quartiles(slowdowns(fine));
  const QuartileSummary rq = Quartiles(slowdowns(restart));
  std::printf("Normalized end-to-end time (non-failure = 100):\n");
  Row({"Policy", "Mean", "Q1", "Median", "Q3", "Paper mean"});
  Row({"no failure", "100.0", "100.0", "100.0", "100.0", "100"});
  Row({"job restart", F(rq.mean, 1), F(rq.q1, 1), F(rq.median, 1),
       F(rq.q3, 1), "~145"});
  Row({"swift fine", F(fq.mean, 1), F(fq.q1, 1), F(fq.median, 1),
       F(fq.q3, 1), "~105"});
  return 0;
}
