// Ablation (not a paper figure): the adaptive shuffle selector vs each
// fixed scheme over a mixed workload spanning all three shuffle-size
// classes. Fig. 12 shows each class in isolation; this shows that on a
// real mix adaptive matches the per-class winner everywhere.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "dag/dag_builder.h"

namespace {

swift::SimJobSpec TwoStage(int tasks, double mb, int id) {
  using namespace swift;
  using OK = OperatorKind;
  DagBuilder b("mix");
  StageDef map;
  map.name = "map";
  map.task_count = tasks;
  map.operators = {OK::kTableScan, OK::kShuffleWrite};
  map.input_bytes_per_task = mb * 1e6;
  map.output_bytes_per_task = mb * 1e6;
  map.cpu_cost_factor = 0.15;
  StageId m = b.AddStage(map);
  StageDef red = map;
  red.name = "reduce";
  red.operators = {OK::kShuffleRead, OK::kStreamLine, OK::kAdhocSink};
  red.output_bytes_per_task = 0;
  StageId r = b.AddStage(red);
  b.AddEdge(m, r);
  SimJobSpec job;
  job.name = "mix-" + std::to_string(id);
  job.dag = std::move(b.Build()).ValueOrDie();
  return job;
}

}  // namespace

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Ablation", "Adaptive selector vs fixed schemes on a mixed load",
         "expectation: adaptive ~= best fixed scheme per class, best "
         "overall total");
  // A mix of small / medium / large shuffle-edge jobs.
  std::vector<SimJobSpec> jobs;
  int id = 0;
  for (int rep = 0; rep < 4; ++rep) {
    jobs.push_back(TwoStage(60, 600, id++));    // small
    jobs.push_back(TwoStage(200, 600, id++));   // medium
    jobs.push_back(TwoStage(700, 600, id++));   // large
  }

  Row({"Scheme", "Total latency(s)"});
  struct Mode {
    const char* name;
    std::optional<ShuffleKind> force;
  };
  const Mode modes[] = {{"adaptive", std::nullopt},
                        {"direct", ShuffleKind::kDirect},
                        {"local", ShuffleKind::kLocal},
                        {"remote", ShuffleKind::kRemote}};
  for (const Mode& m : modes) {
    double total = 0.0;
    for (const SimJobSpec& job : jobs) {
      SimConfig cfg = MakeSwiftSimConfig(2000, 40);
      if (m.force.has_value()) {
        cfg.medium = ShuffleMedium::kMemoryForcedKind;
        cfg.forced_kind = *m.force;
      }
      total += RunSingleJob(cfg, job).Latency();
    }
    Row({m.name, F(total, 1)});
  }
  return 0;
}
