// Compressed shuffle plane benchmark (DESIGN.md Sec. 17 / BENCH_PR10):
//
//   1. SWZ1 codec throughput + ratio on real TPC-H shuffle payloads
//      (SerializeBatch wire bytes of each table) and on incompressible
//      noise (raw-fallback overhead). Best-of-N wall timing.
//   2. Before/after end-to-end pair: the same TPC-H sort job over a
//      forced-Remote fabric with the compressed plane OFF vs ON —
//      shuffle bytes moved, spill bytes stored, wall time, and a
//      byte-identity check of the answers.
//
// Usage: bench_compress [scale_factor]    (default 0.01)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "common/compress.h"
#include "common/rng.h"
#include "exec/serde.h"
#include "exec/tpch.h"
#include "runtime/local_runtime.h"

namespace swift {
namespace {

constexpr int kTrials = 7;

template <typename Fn>
double BestSeconds(Fn&& fn) {
  double best = 1e300;
  for (int t = 0; t < kTrials; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::string TableWire(const std::shared_ptr<Table>& t) {
  Batch b;
  b.schema = t->schema;
  b.rows = t->rows;
  return SerializeBatch(b);
}

void CodecRow(const std::string& name, const std::string& wire) {
  std::string frame;
  const double comp_s = BestSeconds([&] { frame = CompressFrame(wire); });
  std::string back;
  const double decomp_s = BestSeconds([&] {
    auto r = DecompressFrame(frame);
    if (!r.ok()) std::abort();
    back = std::move(*r);
  });
  if (back != wire) std::abort();
  const double mb = static_cast<double>(wire.size()) / (1024.0 * 1024.0);
  bench::Row({name, bench::F(mb, 2),
              bench::F(static_cast<double>(wire.size()) /
                           static_cast<double>(frame.size()),
                       2),
              bench::F(mb / comp_s, 0), bench::F(mb / decomp_s, 0)});
}

struct E2E {
  double wall_ms = 0;
  int64_t shuffle_bytes = 0;
  int64_t compressed_writes = 0;
  int64_t spill_stored = 0;
  int64_t spill_logical = 0;
  std::string result_bytes;
};

E2E RunTpchSort(double sf, bool compression, int64_t cache_budget) {
  LocalRuntimeConfig cfg;
  cfg.shuffle_compression = compression;
  cfg.force_shuffle_kind = ShuffleKind::kRemote;
  cfg.cache_memory_per_worker = cache_budget;
  cfg.spill_root = "/tmp/swift_bench_compress_spill";
  LocalRuntime rt(cfg);
  TpchConfig tpch;
  tpch.scale_factor = sf;
  if (!GenerateTpch(tpch, rt.catalog()).ok()) std::abort();
  const auto t0 = std::chrono::steady_clock::now();
  auto report = rt.RunSql(
      "SELECT l_orderkey, l_linenumber, l_extendedprice, l_shipdate, "
      "l_shipmode FROM tpch_lineitem ORDER BY l_orderkey, l_linenumber");
  const auto t1 = std::chrono::steady_clock::now();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  E2E out;
  out.wall_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
  out.shuffle_bytes = report->stats.shuffle.bytes_transferred;
  out.compressed_writes = report->stats.shuffle.compressed_writes;
  out.result_bytes = SerializeBatch(report->result);
  return out;
}

}  // namespace
}  // namespace swift

int main(int argc, char** argv) {
  using namespace swift;
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;

  bench::Header("bench_compress",
                "SWZ1 codec + compressed shuffle plane (PR 10)",
                "n/a (infrastructure benchmark; Sec. 17 of DESIGN.md)");

  std::printf("\n[1] codec on TPC-H serde payloads, best-of-%d (sf %.3f)\n\n",
              kTrials, sf);
  bench::Row({"payload", "MB", "ratio", "comp_MB/s", "decomp_MB/s"});
  TpchConfig tpch;
  tpch.scale_factor = sf;
  CodecRow("lineitem", TableWire(TpchLineitem(tpch)));
  CodecRow("orders", TableWire(TpchOrders(tpch)));
  CodecRow("customer", TableWire(TpchCustomer(tpch)));
  CodecRow("partsupp", TableWire(TpchPartsupp(tpch)));
  {
    Rng rng(42);
    std::string noise(8 << 20, '\0');
    for (char& c : noise) c = static_cast<char>(rng.UniformInt(0, 255));
    CodecRow("noise_8MB", noise);
  }

  std::printf("\n[2] end-to-end TPC-H sort, forced Remote, OFF vs ON\n\n");
  bench::Row({"plane", "wall_ms", "shuffle_MB", "frames", "identical"});
  const int64_t budget = 256LL << 20;
  E2E off = RunTpchSort(sf, false, budget);
  E2E on = RunTpchSort(sf, true, budget);
  const bool identical = on.result_bytes == off.result_bytes;
  bench::Row({"off", bench::F(off.wall_ms, 1),
              bench::F(static_cast<double>(off.shuffle_bytes) / 1048576.0, 2),
              "0", "-"});
  bench::Row({"on", bench::F(on.wall_ms, 1),
              bench::F(static_cast<double>(on.shuffle_bytes) / 1048576.0, 2),
              std::to_string(on.compressed_writes),
              identical ? "yes" : "NO"});
  const double drop =
      100.0 * (1.0 - static_cast<double>(on.shuffle_bytes) /
                         static_cast<double>(off.shuffle_bytes));
  std::printf("\nshuffle bytes drop: %.1f%%  (acceptance: >= 30%%)\n", drop);
  if (!identical) {
    std::fprintf(stderr, "FATAL: results differ with compression on\n");
    return 1;
  }
  return 0;
}
