// Reproduces Fig. 11: CDF of job latency under JetScope and Bubble
// Execution, normalized per job to Swift's latency for the same job.
//
// Paper: more than 60% of JetScope jobs have latency >= 2x Swift;
// nearly 90% of Bubble jobs are within 1.5x of Swift.

#include <algorithm>

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "trace/production_trace.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 11", "Normalized job latency CDF vs Swift",
         ">60% of JetScope jobs at >=2x Swift; ~90% of Bubble jobs "
         "within 1.5x");
  TraceConfig tc;
  tc.num_jobs = 2000;
  tc.mean_interarrival = 0.0;
  tc.max_stages = 40;
  tc.tasks_log_sigma = 1.1;
  tc.extra_stage_p = 0.68;  // median ~3 stages (Fig. 8(b))
  auto jobs = GenerateProductionTrace(tc);

  SimReport jet = RunTrace(MakeJetScopeSimConfig(100, 10), jobs);
  SimReport bub = RunTrace(MakeBubbleSimConfig(100, 10), jobs);
  SimReport swf = RunTrace(MakeSwiftSimConfig(100, 10), jobs);

  std::vector<double> jet_norm, bub_norm;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!swf.jobs[i].completed) continue;
    const double base = swf.jobs[i].Latency();
    if (base <= 0) continue;
    if (jet.jobs[i].completed) jet_norm.push_back(jet.jobs[i].Latency() / base);
    if (bub.jobs[i].completed) bub_norm.push_back(bub.jobs[i].Latency() / base);
  }
  std::sort(jet_norm.begin(), jet_norm.end());
  std::sort(bub_norm.begin(), bub_norm.end());

  std::printf("Cumulative %% of jobs with normalized latency <= x:\n");
  Row({"x", "JetScope", "Bubble"});
  for (double x : {1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0, 10.0}) {
    Row({F(x, 2), F(100.0 * EmpiricalCdf(jet_norm, x), 1),
         F(100.0 * EmpiricalCdf(bub_norm, x), 1)});
  }
  std::printf("\nJetScope jobs at >=2x Swift: %.1f%% (paper: >60%%)\n",
              100.0 * (1.0 - EmpiricalCdf(jet_norm, 2.0)));
  std::printf("Bubble jobs within 1.5x of Swift: %.1f%% (paper: ~90%%)\n",
              100.0 * EmpiricalCdf(bub_norm, 1.5));
  return 0;
}
