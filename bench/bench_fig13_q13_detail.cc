// Reproduces Fig. 13: the stage-level detail of the TPC-H Q13 job used
// by the fault-tolerance experiment.
//
// Paper: M1 498 tasks (3,012,048 records / 76 MB per task), M2 72
// tasks (262,697 / 5 MB), then J3, R4, R5, R6 shrinking to KB-sized
// aggregates.

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "partition/partitioners.h"
#include "trace/tpch_jobs.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 13", "TPC-H Q13 job detail",
         "M1: 498 tasks, 76 MB/task; M2: 72 tasks, 5 MB/task; chain "
         "J3 -> R4 -> R5 -> R6 shrinking to ~1 KB");
  auto job = BuildTpchJob(13);
  if (!job.ok()) return 1;
  Row({"Stage", "Tasks", "Records/task", "Input/task"});
  for (StageId sid : job->dag.topological_order()) {
    const StageDef& s = job->dag.stage(sid);
    Row({s.name, std::to_string(s.task_count),
         F(s.input_records_per_task, 0),
         FormatBytes(s.input_bytes_per_task)});
  }
  auto plan = ShuffleModeAwarePartitioner().Partition(job->dag);
  if (plan.ok()) std::printf("\n%s", plan->ToString(job->dag).c_str());
  return 0;
}
