// Reproduces Fig. 10: running-executor count over time when the
// production trace is replayed under JetScope, Bubble Execution, and
// Swift on the 100-node cluster.
//
// Paper: JetScope's whole-job gang scheduling leaves the executor count
// fluctuating (waiting + fragmentation) and stretches the replay;
// Swift and Bubble keep executors busy. Swift finishes all jobs in
// 240 s and Bubble in 296 s — speedups of 2.44x and 1.98x over
// JetScope.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "trace/production_trace.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 10", "Running executors over time: JetScope / Bubble / Swift",
         "Swift 240 s, Bubble 296 s, JetScope ~2.44x slower than Swift");
  TraceConfig tc;
  tc.num_jobs = 2000;
  tc.mean_interarrival = 0.0;  // replay: all jobs submitted up front
  tc.max_stages = 40;          // the replayed mix is interactive-heavy
  tc.tasks_log_sigma = 1.1;
  tc.extra_stage_p = 0.68;  // median ~3 stages (Fig. 8(b))    // with a heavier task-count tail (Fig. 8)
  auto jobs = GenerateProductionTrace(tc);

  struct System {
    const char* name;
    SimConfig cfg;
  };
  System systems[] = {
      {"JetScope", MakeJetScopeSimConfig(100, 10)},
      {"Bubble", MakeBubbleSimConfig(100, 10)},
      {"Swift", MakeSwiftSimConfig(100, 10)},
  };
  SimReport reports[3];
  for (int i = 0; i < 3; ++i) {
    reports[i] = RunTrace(systems[i].cfg, jobs);
  }

  std::printf("Executor occupancy (sampled every 20 s):\n");
  Row({"t(s)", "JetScope", "Bubble", "Swift"});
  const double horizon =
      std::max({reports[0].makespan, reports[1].makespan,
                reports[2].makespan});
  for (double t = 0; t <= horizon; t += 20.0) {
    std::vector<std::string> row{F(t, 0)};
    for (int i = 0; i < 3; ++i) {
      const auto& occ = reports[i].occupancy;
      const std::size_t idx = static_cast<std::size_t>(t);
      row.push_back(idx < occ.size()
                        ? std::to_string(occ[idx].running_executors)
                        : "0");
    }
    Row(row);
  }
  std::printf("\nMakespans:\n");
  for (int i = 0; i < 3; ++i) {
    std::printf("  %-10s %.1f s\n", systems[i].name, reports[i].makespan);
  }
  std::printf("Speedup over JetScope: Swift %.2fx (paper 2.44x), "
              "Bubble %.2fx (paper 1.98x)\n",
              reports[0].makespan / reports[2].makespan,
              reports[0].makespan / reports[1].makespan);
  std::printf("Swift vs Bubble: %.2fx (paper 1.23x)\n",
              reports[1].makespan / reports[2].makespan);
  return 0;
}
