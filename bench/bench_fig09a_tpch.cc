// Reproduces Fig. 9(a): all 22 TPC-H queries at 1 TB on the 100-node
// cluster, Swift vs Spark SQL.
//
// Paper: Swift wins every query with a total speedup of 2.11x; the
// largest gaps are on shuffle-heavy multi-join queries.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "trace/tpch_jobs.h"


namespace {

// Metrics stay on for the whole figure — the registry's publish cost
// must not move these numbers.
swift::obs::MetricsRegistry* Registry() {
  static swift::obs::MetricsRegistry reg;
  return &reg;
}

// The paper's TPC-H/Terasort runs own the whole cluster: tasks spread
// over every machine.
swift::SimConfig Dedicated(swift::SimConfig cfg) {
  cfg.machine_spread_multiplier = 1e9;
  cfg.metrics = Registry();
  return cfg;
}
}  // namespace

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 9(a)", "TPC-H 1TB: per-query runtime, Swift vs Spark",
         "total speedup 2.11x over all 22 queries");
  Row({"Query", "Spark (s)", "Swift (s)", "Speedup"});
  double spark_total = 0.0, swift_total = 0.0;
  for (int q : TpchQueryIds()) {
    auto job = BuildTpchJob(q);
    if (!job.ok()) {
      std::fprintf(stderr, "Q%d: %s\n", q, job.status().ToString().c_str());
      return 1;
    }
    const SimJobResult spark =
        RunSingleJob(Dedicated(MakeSparkSimConfig(100, 40)), *job);
    const SimJobResult sw = RunSingleJob(Dedicated(MakeSwiftSimConfig(100, 40)), *job);
    spark_total += spark.Latency();
    swift_total += sw.Latency();
    Row({"Q" + std::to_string(q), F(spark.Latency(), 1), F(sw.Latency(), 1),
         F(spark.Latency() / sw.Latency(), 2)});
  }
  Row({"TOTAL", F(spark_total, 1), F(swift_total, 1),
       F(spark_total / swift_total, 2), "paper: 2.11"});
  return 0;
}
