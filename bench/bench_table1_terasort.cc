// Reproduces Table I: Terasort jobs of M x N tasks (200 MB per map
// task) on the 100-node cluster, Spark vs Swift.
//
// Paper: Spark 61/103/233/539 s, Swift 19/26/33/38 s, speedup
// 3.07/3.96/7.06/14.18 for sizes 250/500/1000/1500. The reproduction
// targets the *shape*: Swift nearly flat, Spark super-linear, speedup
// growing with job size.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "trace/terasort_job.h"


namespace {
// The paper's TPC-H/Terasort runs own the whole cluster: tasks spread
// over every machine.
swift::SimConfig Dedicated(swift::SimConfig cfg) {
  cfg.machine_spread_multiplier = 1e9;
  return cfg;
}
}  // namespace

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Table I", "Terasort: Spark vs Swift",
         "speedup 3.07x -> 14.18x as job size grows 250x250 -> 1500x1500");
  Row({"Job Size", "Spark (s)", "Swift (s)", "Speedup", "Paper"});
  const int sizes[] = {250, 500, 1000, 1500};
  const double paper_speedup[] = {3.07, 3.96, 7.06, 14.18};
  for (int i = 0; i < 4; ++i) {
    const int n = sizes[i];
    SimJobSpec job = BuildTerasortJob(n, n);
    const SimJobResult spark =
        RunSingleJob(Dedicated(MakeSparkSimConfig(100, 40)), job);
    const SimJobResult swift_r =
        RunSingleJob(Dedicated(MakeSwiftSimConfig(100, 40)), job);
    Row({std::to_string(n) + "x" + std::to_string(n),
         F(spark.Latency(), 1), F(swift_r.Latency(), 1),
         F(spark.Latency() / swift_r.Latency(), 2),
         F(paper_speedup[i], 2)});
  }
  return 0;
}
