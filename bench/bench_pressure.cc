// Shuffle pressure benchmark (DESIGN.md Sec. 15): open-loop writers
// offering ~4x the Cache Worker budget against one concurrent reader,
// with and without the admission gate. "before" is the pre-flow-control
// tier (admission_gate = false): over-budget puts either fail hard
// (spill disabled — data dropped) or lean entirely on disk. "after" is
// the gated tier: writers are backpressured until the reader drains, so
// the same workload completes losslessly with bounded resident memory
// and far less spill traffic. Feeds BENCH_PR8.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "shuffle/shuffle_service.h"

namespace swift {
namespace {

constexpr int kWriters = 4;
constexpr int kSlotsPerWriter = 64;
constexpr std::size_t kPayload = 8 << 10;            // 8 KiB per slot
constexpr int64_t kBudget = 512 << 10;               // 512 KiB budget
// Offered load: 4 * 64 * 8 KiB = 2 MiB = 4x the budget.

ShuffleSlotKey Key(int writer, int slot) {
  return ShuffleSlotKey{/*job=*/1, /*src_stage=*/0, writer, /*dst_stage=*/1,
                        slot};
}

struct Variant {
  const char* name;
  bool gate;
  bool spill;
};

struct Outcome {
  int64_t puts_ok = 0;
  int64_t puts_failed = 0;
  double wall_ms = 0.0;
  CacheWorkerStats ws;
  ShuffleServiceStats ss;
};

Outcome RunVariant(const Variant& v) {
  ShuffleService::Config sc;
  sc.machines = 1;
  sc.cache_memory_per_worker = kBudget;
  sc.admission_gate = v.gate;
  sc.retain_for_recovery = false;  // reads drain memory
  sc.put_retry_budget = 1 << 20;   // drained writers never need forcing
  sc.put_wait_ms = 0.5;
  if (v.spill) {
    const auto dir = std::filesystem::temp_directory_path() /
                     (std::string("swift_bench_pressure_") + v.name);
    std::filesystem::remove_all(dir);
    sc.spill_root = dir.string();
  }
  ShuffleService service(sc);

  Outcome out;
  std::atomic<int64_t> ok{0}, failed{0};
  std::atomic<bool> writers_done{false};
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string payload(kPayload, static_cast<char>('a' + w));
      for (int s = 0; s < kSlotsPerWriter; ++s) {
        Status st = service.WritePartition(ShuffleKind::kRemote, Key(w, s),
                                           payload, /*writer_machine=*/0,
                                           /*pipelined=*/false);
        (st.ok() ? ok : failed).fetch_add(1);
      }
    });
  }

  // One reader draining round-robin; a slot that is still missing after
  // the writers finished was dropped by the legacy hard-failure path.
  std::thread reader([&] {
    std::vector<std::pair<int, int>> pending;
    for (int w = 0; w < kWriters; ++w)
      for (int s = 0; s < kSlotsPerWriter; ++s) pending.push_back({w, s});
    while (!pending.empty()) {
      const bool done = writers_done.load();
      std::vector<std::pair<int, int>> next;
      for (const auto& [w, s] : pending) {
        auto r = service.ReadPartition(ShuffleKind::kRemote, Key(w, s),
                                       /*reader_machine=*/0,
                                       /*writer_machine=*/0);
        if (r.ok()) continue;          // drained
        if (done) continue;           // dropped for good: stop waiting
        next.push_back({w, s});
      }
      pending = std::move(next);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  for (auto& t : writers) t.join();
  writers_done.store(true);
  reader.join();

  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.puts_ok = ok.load();
  out.puts_failed = failed.load();
  out.ws = service.worker_stats();
  out.ss = service.stats();
  return out;
}

int Run() {
  bench::Header(
      "Shuffle pressure", "open-loop writers at 4x the Cache Worker budget",
      "FuxiShuffle direction (ROADMAP item 3): flow control degrades "
      "gracefully where the legacy tier drops data or floods the disk");

  const Variant variants[] = {
      {"gate-off/no-spill", false, false},  // legacy sharp edge: data loss
      {"gate-on/no-spill", true, false},    // after: backpressure completes
      {"gate-off/spill", false, true},      // legacy: disk carries overload
      {"gate-on/spill", true, true},        // after: same workload, gated
  };

  bench::Row({"variant", "puts-ok", "lost", "wall-ms", "peak-KB", "spill-KB",
              "bp-waits", "forced"});
  for (const Variant& v : variants) {
    const Outcome o = RunVariant(v);
    bench::Row({v.name, std::to_string(o.puts_ok),
                std::to_string(o.puts_failed), bench::F(o.wall_ms, 1),
                std::to_string(o.ws.peak_memory_in_use >> 10),
                std::to_string(o.ws.spilled_bytes >> 10),
                std::to_string(o.ss.put_backpressure_waits),
                std::to_string(o.ws.forced_admits)});
  }
  std::printf(
      "\noffered load: %d writers x %d slots x %zu KiB = %lld KiB against a\n"
      "%lld KiB budget. 'lost' puts failed with ResourceExhausted and their\n"
      "bytes never reached the reader; the gated tier must keep it at 0.\n",
      kWriters, kSlotsPerWriter, kPayload >> 10,
      static_cast<long long>(kWriters * kSlotsPerWriter * kPayload >> 10),
      static_cast<long long>(kBudget >> 10));
  return 0;
}

}  // namespace
}  // namespace swift

int main() { return swift::Run(); }
