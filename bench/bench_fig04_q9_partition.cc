// Reproduces Fig. 4: shuffle-mode-aware partitioning of the TPC-H Q9
// job DAG into graphlets.
//
// Paper: Q9's 12 stages partition into exactly 4 graphlets —
// {M1,M2,M3,J4}, {M5,J6}, {M7,M8,R9,J10}, {R11,R12} — with trigger
// stages J4, J6, J10; the barrier edges are J4->J6, J6->J10, J10->R11.

#include "bench/bench_util.h"
#include "partition/partitioners.h"
#include "trace/tpch_jobs.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 4", "TPC-H Q9 job partitioning",
         "4 graphlets: {M1,M2,M3,J4} {M5,J6} {M7,M8,R9,J10} {R11,R12}");
  auto job = BuildTpchJob(9);
  if (!job.ok()) return 1;
  std::printf("%s\n", job->dag.ToString().c_str());
  ShuffleModeAwarePartitioner partitioner;
  auto plan = partitioner.Partition(job->dag);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", plan->ToString(job->dag).c_str());
  std::printf("\nSubmission order:");
  for (GraphletId g : plan->SubmissionOrder()) std::printf(" %d", g);
  std::printf("\ngraphlets=%zu (paper: 4)\n", plan->graphlets.size());
  return 0;
}
