// Chaos matrix (DESIGN.md Sec. 10): the runnable TPC-H suite executed on
// the real local runtime under each seeded fault schedule. Reports the
// fine-grained recovery cost (tasks re-run) against the job-restart
// baseline (every already-finished task re-executed), plus wall time
// relative to the clean run. Feeds the EXPERIMENTS.md recovery table.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/tpch.h"
#include "obs/metrics.h"
#include "runtime/local_runtime.h"
#include "sql/tpch_queries.h"

namespace swift {
namespace {

struct Schedule {
  std::string name;
  std::optional<FaultSchedule> fs;
  /// Spill-IO schedules squeeze the Cache Worker budget and enable a
  /// spill dir so there are spill files to fault; Remote shuffle is
  /// forced because sf-0.001 edges would otherwise go Direct.
  int64_t cache_budget = 0;  ///< 0 = default
  bool spill = false;
};

std::vector<Schedule> Matrix() {
  std::vector<Schedule> out;
  out.push_back({"clean", std::nullopt});
  {
    FaultSchedule fs;
    fs.seed = 11;
    fs.task_crash_p = 0.25;
    fs.max_task_crashes = 16;
    out.push_back({"task-crashes", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 13;
    fs.read_timeout_p = 0.5;
    fs.timeouts_per_victim = 2;
    fs.max_read_timeouts = 1 << 20;
    out.push_back({"flaky-links", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 14;
    fs.corrupt_p = 0.5;
    fs.max_corruptions = 16;
    out.push_back({"bit-corruption", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 15;
    fs.kill_machine = 1;
    fs.kill_after_task_starts = 3;
    out.push_back({"machine-loss", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 16;
    fs.task_crash_p = 0.12;
    fs.max_task_crashes = 8;
    fs.read_timeout_p = 0.2;
    fs.max_read_timeouts = 1 << 20;
    fs.corrupt_p = 0.15;
    fs.max_corruptions = 8;
    fs.kill_machine = 2;
    fs.kill_after_task_starts = 7;
    out.push_back({"combined", fs});
  }
  {
    FaultSchedule fs;
    fs.seed = 17;
    fs.spill_write_fail_p = 0.5;
    fs.spill_write_fails_per_victim = 1;
    fs.max_spill_write_faults = 1 << 10;
    out.push_back(
        {"spill-write-faults", fs, /*cache_budget=*/2 << 10, /*spill=*/true});
  }
  {
    FaultSchedule fs;
    fs.seed = 18;
    fs.spill_read_fail_p = 0.5;
    fs.spill_read_fails_per_victim = 2;
    fs.max_spill_read_faults = 1 << 10;
    out.push_back(
        {"spill-read-faults", fs, /*cache_budget=*/2 << 10, /*spill=*/true});
  }
  {
    // Permanent spill losses (capped so recovery converges) on top of a
    // mid-wave machine loss.
    FaultSchedule fs;
    fs.seed = 19;
    fs.spill_read_fail_p = 0.5;
    fs.spill_read_fails_per_victim = 1 << 10;
    fs.max_spill_read_faults = 6;
    fs.kill_machine = 1;
    fs.kill_after_task_starts = 5;
    out.push_back(
        {"spill+machine-loss", fs, /*cache_budget=*/2 << 10, /*spill=*/true});
  }
  return out;
}

int Run() {
  bench::Header(
      "Chaos matrix", "TPC-H suite under seeded fault schedules (real runtime)",
      "Sec. IV: fine-grained recovery re-runs only affected tasks, "
      "vs. restarting the whole job");
  const std::vector<int> queries = RunnableTpchQueries();

  bench::Row({"schedule", "tasks", "reruns", "recover", "mach.fail",
              "restart-eq", "spill.io", "lost", "wall-ms"});
  double clean_ms = 0.0;
  for (const Schedule& sched : Matrix()) {
    // One registry per schedule: the table below reads the runtime's
    // counters instead of summing per-report JobRunStats fields (the
    // two stay in lockstep; tests/chaos_soak_test.cc asserts it).
    obs::MetricsRegistry reg;
    LocalRuntimeConfig cfg;
    cfg.fault_schedule = sched.fs;
    cfg.metrics = &reg;
    if (sched.cache_budget > 0) cfg.cache_memory_per_worker = sched.cache_budget;
    if (sched.spill) {
      cfg.spill_root = (std::filesystem::temp_directory_path() /
                        ("swift_bench_chaos_" + sched.name))
                           .string();
      cfg.force_shuffle_kind = ShuffleKind::kRemote;
    }
    LocalRuntime rt(cfg);
    TpchConfig tpch;
    tpch.scale_factor = 0.001;
    if (auto st = GenerateTpch(tpch, rt.catalog()); !st.ok()) {
      std::fprintf(stderr, "tpch: %s\n", st.ToString().c_str());
      return 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int q : queries) {
      auto sql = TpchQuerySql(q);
      if (!sql.ok()) continue;
      auto report = rt.RunSql(*sql);
      if (!report.ok()) {
        std::fprintf(stderr, "%s Q%d: %s\n", sched.name.c_str(), q,
                     report.status().ToString().c_str());
        return 1;
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (sched.name == "clean") clean_ms = ms;
    const int64_t tasks = reg.CounterValue("runtime.tasks.completed") +
                          reg.CounterValue("runtime.tasks.failed");
    bench::Row({sched.name, std::to_string(tasks),
                std::to_string(reg.CounterValue("runtime.tasks.rerun")),
                std::to_string(reg.CounterValue("runtime.recoveries")),
                std::to_string(reg.CounterValue("runtime.machine_failures")),
                std::to_string(
                    reg.CounterValue("runtime.restart_equivalent_tasks")),
                std::to_string(reg.CounterValue("shuffle.spill.io_errors")),
                std::to_string(reg.CounterValue("shuffle.spill.lost_slots")),
                bench::F(ms, 1)});
  }
  std::printf(
      "\nrestart-eq counts the already-finished tasks a job-restart\n"
      "baseline would have re-executed across the same failures; the\n"
      "clean run took %.1f ms.\n",
      clean_ms);
  return 0;
}

}  // namespace
}  // namespace swift

int main() { return swift::Run(); }
