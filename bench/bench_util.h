#ifndef SWIFT_BENCH_BENCH_UTIL_H_
#define SWIFT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "sim/cluster_sim.h"

namespace swift {
namespace bench {

inline void Header(const std::string& id, const std::string& title,
                   const std::string& paper) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("Paper reports: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

inline void Row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string F(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// \brief Runs one job alone on a simulated cluster; returns its result.
inline SimJobResult RunSingleJob(const SimConfig& config,
                                 const SimJobSpec& job) {
  ClusterSim sim(config);
  auto st = sim.SubmitJob(job);
  if (!st.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", st.ToString().c_str());
    return SimJobResult{};
  }
  auto report = sim.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return SimJobResult{};
  }
  return report->jobs[0];
}

/// \brief Replays a whole trace; returns the full report.
inline SimReport RunTrace(const SimConfig& config,
                          const std::vector<SimJobSpec>& jobs) {
  ClusterSim sim(config);
  for (const SimJobSpec& job : jobs) {
    auto st = sim.SubmitJob(job);
    if (!st.ok()) {
      std::fprintf(stderr, "submit failed: %s\n", st.ToString().c_str());
      return SimReport{};
    }
  }
  auto report = sim.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return SimReport{};
  }
  return *std::move(report);
}

}  // namespace bench
}  // namespace swift

#endif  // SWIFT_BENCH_BENCH_UTIL_H_
