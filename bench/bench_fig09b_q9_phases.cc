// Reproduces Fig. 9(b): per-stage 4-phase breakdown (task Launching,
// Shuffle Read, Shuffle Write, record Processing) of the critical TPC-H
// Q9 stages under Spark and Swift.
//
// Paper: Spark spends >71 s launching critical tasks and 137.8/133.9 s
// on disk shuffle save/load, while Swift's pre-launched executors make
// launch negligible and its in-network shuffle takes 9.61 s (write) and
// 8.92 s (read).

#include <map>

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "trace/tpch_jobs.h"


namespace {
// The paper's TPC-H/Terasort runs own the whole cluster: tasks spread
// over every machine.
swift::SimConfig Dedicated(swift::SimConfig cfg) {
  cfg.machine_spread_multiplier = 1e9;
  return cfg;
}
}  // namespace

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 9(b)", "TPC-H Q9 stage phase breakdown (seconds)",
         "Spark: launch >71 s total, disk shuffle ~137.8 s write / "
         "~133.9 s read; Swift: launch ~0, shuffle 9.61 s / 8.92 s");

  auto job = BuildTpchJob(9);
  if (!job.ok()) return 1;
  const SimJobResult spark = RunSingleJob(Dedicated(MakeSparkSimConfig(100, 40)), *job);
  const SimJobResult sw = RunSingleJob(Dedicated(MakeSwiftSimConfig(100, 40)), *job);

  auto by_stage = [](const SimJobResult& r) {
    std::map<std::string, StagePhases> m;
    for (const StagePhases& p : r.phases) m[p.stage_name] = p;
    return m;
  };
  auto spark_p = by_stage(spark);
  auto swift_p = by_stage(sw);

  Row({"Stage", "Spark-L", "Spark-SR", "Spark-SW", "Spark-P", "Swift-L",
       "Swift-SR", "Swift-SW", "Swift-P"}, 10);
  double sl = 0, ssr = 0, ssw = 0, wl = 0, wsr = 0, wsw = 0;
  for (const char* stage :
       {"M1", "M5", "J4", "J6", "J10", "R11", "R12"}) {
    const StagePhases& a = spark_p[stage];
    const StagePhases& b = swift_p[stage];
    sl += a.launch;
    ssr += a.shuffle_read;
    ssw += a.shuffle_write;
    wl += b.launch;
    wsr += b.shuffle_read;
    wsw += b.shuffle_write;
    Row({stage, F(a.launch, 1), F(a.shuffle_read, 1), F(a.shuffle_write, 1),
         F(a.process, 1), F(b.launch, 2), F(b.shuffle_read, 2),
         F(b.shuffle_write, 2), F(b.process, 1)}, 10);
  }
  std::printf("\nCritical-task totals:\n");
  Row({"", "launch", "shuffle-read", "shuffle-write"}, 16);
  Row({"Spark", F(sl, 1), F(ssr, 1), F(ssw, 1)}, 16);
  Row({"Swift", F(wl, 2), F(wsr, 2), F(wsw, 2)}, 16);
  Row({"paper Spark", "> 71", "~133.9", "~137.8"}, 16);
  Row({"paper Swift", "~0", "8.92", "9.61"}, 16);
  return 0;
}
