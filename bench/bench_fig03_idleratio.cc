// Reproduces Fig. 3: the IdleRatio of production clusters when gang
// scheduling (whole-job units, JetScope-style) is used.
//
// Paper: average IdleRatio of 3.81% / 13.15% / 14.45% / 14.92% on four
// production clusters — i.e. significant executor time is spent parked
// waiting for input data. The four simulated clusters differ in their
// workload mix (stage depth / barrier frequency), as production
// clusters do.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "trace/production_trace.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 3", "IdleRatio under gang scheduling, 4 clusters",
         "averages 3.81% / 13.15% / 14.45% / 14.92%");
  Row({"Cluster", "Jobs", "Mean(%)", "Q1(%)", "Median(%)", "Q3(%)",
       "Paper(%)"});
  struct ClusterMix {
    double extra_stage_p;  // stage-depth mix
    double barrier_p;
    uint64_t seed;
    double paper;
  };
  const ClusterMix mixes[] = {
      {0.15, 0.30, 101, 3.81},   // mostly single-stage jobs
      {0.55, 0.55, 102, 13.15},  // deeper DAGs
      {0.58, 0.60, 103, 14.45},
      {0.60, 0.62, 104, 14.92},
  };
  int idx = 1;
  for (const ClusterMix& mix : mixes) {
    TraceConfig tc;
    tc.num_jobs = 400;
    tc.seed = mix.seed;
    tc.extra_stage_p = mix.extra_stage_p;
    tc.barrier_stage_p = mix.barrier_p;
    tc.mean_interarrival = 0.4;
    auto jobs = GenerateProductionTrace(tc);
    SimConfig cfg = MakeJetScopeSimConfig(200, 40);  // gang scheduling
    // One registry per cluster: the sim publishes each completed job's
    // idle ratio to the sim.job.idle_ratio series, and the figure is
    // computed from that instead of private result fields.
    obs::MetricsRegistry reg;
    cfg.metrics = &reg;
    SimReport report = RunTrace(cfg, jobs);
    (void)report;
    std::vector<double> ratios = reg.SeriesValue("sim.job.idle_ratio");
    for (double& r : ratios) r *= 100.0;
    QuartileSummary q = Quartiles(ratios);
    Row({"#" + std::to_string(idx++), std::to_string(ratios.size()),
         F(q.mean, 2), F(q.q1, 2), F(q.median, 2), F(q.q3, 2),
         F(mix.paper, 2)});
  }
  return 0;
}
