// Ablation (not a paper figure): how the heartbeat interval trades
// failure-detection delay against recovery slowdown for machine
// failures. Motivates the paper's 5/10/15 s interval-by-cluster-size
// rule (Sec. IV-A): short intervals detect fast, long intervals scale.

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "fault/heartbeat.h"
#include "trace/tpch_jobs.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Ablation", "Heartbeat-driven detection delay vs job slowdown",
         "expectation: slowdown grows with detection delay; the 5/10/15 s "
         "rule keeps machine-failure recovery within ~2 heartbeats");
  auto job = BuildTpchJob(13);
  if (!job.ok()) return 1;

  SimConfig base = MakeSwiftSimConfig(100, 40);
  base.machine_spread_multiplier = 1e9;
  const SimJobResult clean = RunSingleJob(base, *job);
  const double baseline = clean.finish_time - clean.first_alloc_time;
  std::printf("non-failure runtime %.2f s\n\n", baseline);

  Row({"Cluster size", "HB interval", "Detect delay", "Slowdown%"});
  for (int machines : {100, 1000, 10000}) {
    const double interval = HeartbeatMonitor::IntervalForClusterSize(machines);
    SimConfig cfg = base;
    cfg.machines = 100;  // run on the same substrate; vary detection only
    // Detection delay = miss_threshold * interval for machine failures.
    for (int miss : {1, 2, 3}) {
      cfg.heartbeat_miss_threshold = miss;
      // Pretend the heartbeat rule of a `machines`-sized cluster applies.
      // DetectionDelay() uses config.machines; emulate by scaling the
      // miss threshold against the 100-machine interval (5 s).
      const double wanted = interval * miss;
      cfg.heartbeat_miss_threshold =
          std::max(1, static_cast<int>(wanted / 5.0));
      SimJobSpec spec = *job;
      FailureInjection f;
      f.time = baseline * 0.5;
      f.stage = job->dag.stages()[2].id;  // mid-pipeline stage
      f.kind = FailureKind::kMachineFailure;
      spec.failures = {f};
      const SimJobResult r = RunSingleJob(cfg, spec);
      const double rt = r.finish_time - r.first_alloc_time;
      Row({std::to_string(machines), F(interval, 0) + "s x" +
           std::to_string(miss), F(wanted, 0) + "s",
           F(100.0 * (rt - baseline) / baseline, 1)});
    }
  }
  return 0;
}
