// Reproduces Fig. 8: the characteristics of the production job trace.
//
// Paper: 2,000 jobs; average runtime ~30 s, >90% complete within 120 s
// (Fig. 8(a)); >80% of jobs have <=80 tasks and <=4 stages (Fig. 8(b)),
// with tails to ~2,000 tasks and ~200 stages.

#include <algorithm>

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "trace/production_trace.h"

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 8", "Production trace characteristics",
         "avg runtime ~30 s, >90% < 120 s; >80% of jobs <= 80 tasks and "
         "<= 4 stages");
  TraceConfig tc;
  auto jobs = GenerateProductionTrace(tc);

  // Fig. 8(b): job size distribution straight from the trace.
  std::vector<double> tasks, stages;
  for (const SimJobSpec& job : jobs) {
    tasks.push_back(static_cast<double>(job.dag.TotalTasks()));
    stages.push_back(static_cast<double>(job.dag.stages().size()));
  }
  std::sort(tasks.begin(), tasks.end());
  std::sort(stages.begin(), stages.end());
  std::printf("Job size distribution (%zu jobs):\n", jobs.size());
  Row({"", "p50", "p80", "p90", "p99", "max"});
  Row({"tasks", F(Quantile(tasks, 0.5), 0), F(Quantile(tasks, 0.8), 0),
       F(Quantile(tasks, 0.9), 0), F(Quantile(tasks, 0.99), 0),
       F(tasks.back(), 0)});
  Row({"stages", F(Quantile(stages, 0.5), 0), F(Quantile(stages, 0.8), 0),
       F(Quantile(stages, 0.9), 0), F(Quantile(stages, 0.99), 0),
       F(stages.back(), 0)});
  std::printf("share of jobs with <=80 tasks: %.1f%% (paper: >80%%)\n",
              100.0 * EmpiricalCdf(tasks, 80.0));
  std::printf("share of jobs with <=4 stages: %.1f%% (paper: >80%%)\n",
              100.0 * EmpiricalCdf(stages, 4.0));

  // Fig. 8(a): runtime distribution of the replayed trace on an
  // uncontended Swift cluster.
  SimConfig cfg = MakeSwiftSimConfig(500, 40);
  SimReport report = RunTrace(cfg, jobs);
  std::vector<double> runtimes;
  for (const SimJobResult& r : report.jobs) {
    if (r.completed) runtimes.push_back(r.finish_time - r.first_alloc_time);
  }
  std::sort(runtimes.begin(), runtimes.end());
  std::printf("\nJob runtime distribution (simulated, %zu jobs):\n",
              runtimes.size());
  Row({"", "mean", "p50", "p90", "p99", "max"});
  Row({"runtime(s)", F(Mean(runtimes), 1), F(Quantile(runtimes, 0.5), 1),
       F(Quantile(runtimes, 0.9), 1), F(Quantile(runtimes, 0.99), 1),
       F(runtimes.back(), 1)});
  std::printf("share of jobs finishing within 120 s: %.1f%% (paper: >90%%)\n",
              100.0 * EmpiricalCdf(runtimes, 120.0));
  std::printf("mean runtime: %.1f s (paper: ~30 s)\n", Mean(runtimes));
  return 0;
}
