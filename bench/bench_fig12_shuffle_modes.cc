// Reproduces Fig. 12: normalized average job execution time when
// Direct, Local, and Remote Shuffle are each forced for jobs of small,
// medium, and large shuffle edge size (replayed on the 2,000-node
// cluster). Direct Shuffle is normalized to 1 per category.
//
// Paper: small -> Direct best (Local +4%, Remote +3%); medium -> Remote
// best (Direct +25%, Local +3.8% over Remote); large -> Local best
// (Direct +108.3%, Remote +47.9% over Local).

#include "baselines/baseline_configs.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "dag/dag_builder.h"
#include "obs/metrics.h"

namespace {

// A shuffle-dominated 2-stage job (the paper's Fig. 12 jobs are chosen
// by shuffle edge size, where data movement is the bottleneck).
swift::SimJobSpec ShuffleHeavyJob(int tasks, double mb_per_task,
                                  uint64_t variant) {
  using namespace swift;
  using OK = OperatorKind;
  DagBuilder b("shuffle-heavy");
  StageDef map;
  map.name = "map";
  map.task_count = tasks;
  map.operators = {OK::kTableScan, OK::kShuffleWrite};
  map.input_bytes_per_task = mb_per_task * 1e6;
  map.output_bytes_per_task = mb_per_task * 1e6;
  map.cpu_cost_factor = 0.15;
  StageId m = b.AddStage(map);
  StageDef red;
  red.name = "reduce";
  red.task_count = tasks;
  red.operators = {OK::kShuffleRead, OK::kStreamLine, OK::kAdhocSink};
  red.input_bytes_per_task = mb_per_task * 1e6;
  red.output_bytes_per_task = 0.0;
  red.cpu_cost_factor = 0.15;
  StageId r = b.AddStage(red);
  b.AddEdge(m, r);
  SimJobSpec job;
  job.name = "shuffle-heavy-" + std::to_string(tasks) + "-" +
             std::to_string(variant);
  job.dag = std::move(b.Build()).ValueOrDie();
  return job;
}

}  // namespace

int main() {
  using namespace swift;
  using namespace swift::bench;
  Header("Fig. 12", "Forced shuffle scheme vs shuffle edge size",
         "small: Direct best; medium: Remote best; large: Local best "
         "(Direct +108.3%, Remote +47.9%)");

  struct Category {
    const char* name;
    int tasks;       // M = N
    double mb_per_task;
  };
  // Edge sizes: 60^2=3.6k (small), 200^2=40k (medium), 700^2=490k (large).
  const Category cats[] = {
      {"small", 60, 600}, {"medium", 200, 600}, {"large", 700, 600}};

  Row({"Category", "Direct", "Local", "Remote", "Best", "Paper best"});
  const char* paper_best[] = {"direct", "remote", "local"};
  int ci = 0;
  for (const Category& cat : cats) {
    double t[3] = {0, 0, 0};
    const ShuffleKind kinds[] = {ShuffleKind::kDirect, ShuffleKind::kLocal,
                                 ShuffleKind::kRemote};
    for (int k = 0; k < 3; ++k) {
      SimConfig cfg = MakeSwiftSimConfig(2000, 40);
      cfg.medium = ShuffleMedium::kMemoryForcedKind;
      cfg.forced_kind = kinds[k];
      // Average over a few job shapes per category, reading each run's
      // latency from the registry's sim.job.latency_s series (one fresh
      // registry per forced scheme).
      obs::MetricsRegistry reg;
      cfg.metrics = &reg;
      for (int rep = 0; rep < 5; ++rep) {
        (void)RunSingleJob(cfg, ShuffleHeavyJob(cat.tasks, cat.mb_per_task,
                                                static_cast<uint64_t>(rep)));
      }
      t[k] = Mean(reg.SeriesValue("sim.job.latency_s"));
    }
    const double base = t[0];  // Direct normalized to 1
    const char* best = t[0] <= t[1] && t[0] <= t[2]
                           ? "direct"
                           : (t[1] <= t[2] ? "local" : "remote");
    Row({cat.name, F(t[0] / base, 3), F(t[1] / base, 3), F(t[2] / base, 3),
         best, paper_best[ci++]});
  }
  std::printf(
      "\npaper normalized-to-direct values:\n"
      "  small : direct 1.000  local 1.040  remote 1.030\n"
      "  medium: direct 1.000  local 0.830  remote 0.800\n"
      "  large : direct 1.000  local 0.480  remote 0.710\n");
  return 0;
}
